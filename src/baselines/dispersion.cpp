#include "baselines/dispersion.hpp"

#include <vector>

#include "util/stats.hpp"

namespace pathload::baselines {

Rate CprobeEstimator::train_dispersion_rate(const core::StreamOutcome& outcome,
                                            int packet_size) {
  if (outcome.records.size() < 2) return Rate::zero();
  const Duration spread =
      outcome.records.back().received - outcome.records.front().received;
  if (spread <= Duration::zero()) return Rate::zero();
  const double bits =
      static_cast<double>(outcome.records.size() - 1) * packet_size * 8.0;
  return Rate::bps(bits / spread.secs());
}

Rate CprobeEstimator::measure(core::ProbeChannel& channel,
                              std::vector<double>* train_rates_mbps,
                              bool* hit_deadline) const {
  OnlineStats rates;
  const TimePoint start = channel.now();
  for (int t = 0; t < cfg_.trains; ++t) {
    if (deadline_exceeded(channel.now() - start)) {
      if (hit_deadline != nullptr) *hit_deadline = true;
      break;
    }
    core::StreamSpec spec;
    spec.stream_id = 0x0c0b0000u + static_cast<std::uint32_t>(t);
    spec.packet_count = cfg_.train_length;
    spec.packet_size = cfg_.packet_size;
    spec.period = cfg_.period;
    const auto outcome = channel.run_stream(spec);
    const Rate r = train_dispersion_rate(outcome, cfg_.packet_size);
    if (r > Rate::zero()) rates.add(r.bits_per_sec());
    if (train_rates_mbps != nullptr) train_rates_mbps->push_back(r.mbits_per_sec());
    channel.idle(cfg_.inter_train_gap);
  }
  return Rate::bps(rates.mean());
}

std::string CprobeEstimator::config_text() const {
  std::string out;
  out += core::kv_config_line("trains", cfg_.trains);
  out += core::kv_config_line("train_length", cfg_.train_length);
  out += core::kv_config_line("packet_size", cfg_.packet_size);
  out += core::kv_config_line("period_us", cfg_.period.micros());
  out += core::kv_config_line("inter_train_gap_ms", cfg_.inter_train_gap.millis());
  return out;
}

core::EstimateReport CprobeEstimator::run(core::ProbeChannel& channel,
                                          Rng& /*rng*/) {
  core::MeteredChannel metered{channel};
  const TimePoint start = metered.now();
  std::vector<double> train_rates;
  bool hit_deadline = false;
  const Rate adr = measure(metered, &train_rates, &hit_deadline);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kAdr;
  report.valid = adr > Rate::zero();
  report.low = report.high = adr;
  report.streams_sent = metered.streams();
  report.packets_sent = metered.packets();
  report.bytes_sent = metered.bytes();
  report.elapsed = metered.now() - start;
  report.packets_lost = metered.packets() - metered.received();
  const double offered =
      Rate::bps(cfg_.packet_size * 8.0 / cfg_.period.secs()).mbits_per_sec();
  for (double r : train_rates) {
    report.iterations.push_back({offered, r, "train"});
  }
  core::classify_outcome(report, hit_deadline);
  return report;
}

Rate PacketPairEstimator::measure(core::ProbeChannel& channel,
                                  bool* hit_deadline) const {
  std::vector<double> gaps;
  gaps.reserve(static_cast<std::size_t>(cfg_.pairs));
  const TimePoint start = channel.now();
  for (int p = 0; p < cfg_.pairs; ++p) {
    if (deadline_exceeded(channel.now() - start)) {
      if (hit_deadline != nullptr) *hit_deadline = true;
      break;
    }
    core::StreamSpec spec;
    spec.stream_id = 0x0bb00000u + static_cast<std::uint32_t>(p);
    spec.packet_count = 2;
    spec.packet_size = cfg_.packet_size;
    // Back-to-back means "as fast as the sender can": a period far below
    // any link's serialization time, so the pair queues at the first hop.
    spec.period = Duration::microseconds(1);
    const auto outcome = channel.run_stream(spec);
    if (outcome.records.size() == 2) {
      const Duration gap = outcome.records[1].received - outcome.records[0].received;
      if (gap > Duration::zero()) gaps.push_back(gap.secs());
    }
    channel.idle(cfg_.inter_pair_gap);
  }
  if (gaps.empty()) return Rate::zero();
  const double typical_gap = median(gaps);
  return Rate::bps(cfg_.packet_size * 8.0 / typical_gap);
}

std::string PacketPairEstimator::config_text() const {
  std::string out;
  out += core::kv_config_line("pairs", cfg_.pairs);
  out += core::kv_config_line("packet_size", cfg_.packet_size);
  out += core::kv_config_line("inter_pair_gap_ms", cfg_.inter_pair_gap.millis());
  return out;
}

core::EstimateReport PacketPairEstimator::run(core::ProbeChannel& channel,
                                              Rng& /*rng*/) {
  core::MeteredChannel metered{channel};
  const TimePoint start = metered.now();
  bool hit_deadline = false;
  const Rate cap = measure(metered, &hit_deadline);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kCapacity;
  report.valid = cap > Rate::zero();
  report.low = report.high = cap;
  report.streams_sent = metered.streams();
  report.packets_sent = metered.packets();
  report.bytes_sent = metered.bytes();
  report.elapsed = metered.now() - start;
  report.packets_lost = metered.packets() - metered.received();
  core::classify_outcome(report, hit_deadline);
  return report;
}

}  // namespace pathload::baselines
