#include "baselines/dispersion.hpp"

#include <vector>

#include "util/stats.hpp"

namespace pathload::baselines {

Rate CprobeEstimator::train_dispersion_rate(const core::StreamOutcome& outcome,
                                            int packet_size) {
  if (outcome.records.size() < 2) return Rate::zero();
  const Duration spread =
      outcome.records.back().received - outcome.records.front().received;
  if (spread <= Duration::zero()) return Rate::zero();
  const double bits =
      static_cast<double>(outcome.records.size() - 1) * packet_size * 8.0;
  return Rate::bps(bits / spread.secs());
}

Rate CprobeEstimator::measure(core::ProbeChannel& channel) const {
  OnlineStats rates;
  for (int t = 0; t < cfg_.trains; ++t) {
    core::StreamSpec spec;
    spec.stream_id = 0x0c0b0000u + static_cast<std::uint32_t>(t);
    spec.packet_count = cfg_.train_length;
    spec.packet_size = cfg_.packet_size;
    spec.period = cfg_.period;
    const auto outcome = channel.run_stream(spec);
    const Rate r = train_dispersion_rate(outcome, cfg_.packet_size);
    if (r > Rate::zero()) rates.add(r.bits_per_sec());
    channel.idle(cfg_.inter_train_gap);
  }
  return Rate::bps(rates.mean());
}

Rate PacketPairEstimator::measure(core::ProbeChannel& channel) const {
  std::vector<double> gaps;
  gaps.reserve(static_cast<std::size_t>(cfg_.pairs));
  for (int p = 0; p < cfg_.pairs; ++p) {
    core::StreamSpec spec;
    spec.stream_id = 0x0bb00000u + static_cast<std::uint32_t>(p);
    spec.packet_count = 2;
    spec.packet_size = cfg_.packet_size;
    // Back-to-back means "as fast as the sender can": a period far below
    // any link's serialization time, so the pair queues at the first hop.
    spec.period = Duration::microseconds(1);
    const auto outcome = channel.run_stream(spec);
    if (outcome.records.size() == 2) {
      const Duration gap = outcome.records[1].received - outcome.records[0].received;
      if (gap > Duration::zero()) gaps.push_back(gap.secs());
    }
    channel.idle(cfg_.inter_pair_gap);
  }
  if (gaps.empty()) return Rate::zero();
  const double typical_gap = median(gaps);
  return Rate::bps(cfg_.packet_size * 8.0 / typical_gap);
}

}  // namespace pathload::baselines
