#pragma once

#include "core/estimator.hpp"
#include "util/units.hpp"

namespace pathload::baselines {

struct DelphiConfig {
  /// Capacity of the (assumed single) queue. Delphi needs it a priori;
  /// in practice it comes from a packet-pair/pathrate measurement.
  Rate capacity{Rate::mbps(10)};
  int pairs{100};
  int packet_size{1000};
  /// Input spacing of each pair; small enough that the queue is unlikely
  /// to drain between the two probes (Delphi's key assumption).
  Duration pair_spacing{Duration::milliseconds(2)};
  Duration inter_pair_gap{Duration::milliseconds(25)};
};

/// Delphi-style cross-traffic estimator (Ribeiro et al., 2000), simplified
/// to its core sampling identity.
///
/// Model the path as ONE queue of known capacity C. If the queue stays
/// busy between the two packets of a probe pair, the output spacing
/// expands to serve exactly the cross traffic that arrived in between:
///     C * delta_out = L + lambda * delta_in
/// so each pair yields a cross-traffic sample
///     lambda = (C * delta_out - L) / delta_in,  and  A = C - E[lambda].
///
/// The paper's critique (Section II): this single-queue model breaks when
/// the tight and narrow links differ — queueing anywhere in the path is
/// attributed to the modelled queue. A second structural weakness of pair
/// methods shows up here too: pairs whose spacing was NOT expanded (queue
/// drained) contribute lambda = C - L/delta_in, anchoring the estimate to
/// the probe's own rate. `baselines_table` and the unit tests demonstrate
/// both the working case and the failure modes.
class DelphiEstimator final : public core::Estimator {
 public:
  explicit DelphiEstimator(DelphiConfig cfg = DelphiConfig()) : cfg_{cfg} {}

  struct Estimate {
    Rate cross_traffic{};
    Rate avail_bw{};
    int usable_pairs{0};
    bool valid{false};
    bool hit_deadline{false};  ///< a run deadline cut the pair loop short
  };

  Estimate measure(core::ProbeChannel& channel) const;

  // Estimator interface: avail-bw point (A = C - E[lambda]); remember the
  // capacity C is an *input* here, not something Delphi measures.
  std::string_view name() const override { return "delphi"; }
  std::string config_text() const override;
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  DelphiConfig cfg_;
};

}  // namespace pathload::baselines
