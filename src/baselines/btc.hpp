#pragma once

#include "core/estimator.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"
#include "util/stats.hpp"

namespace pathload::baselines {

/// Bulk-transfer-capacity measurement (Section VII / RFC 3148): run one
/// greedy TCP connection for a fixed interval and report its throughput —
/// the "TCP as an avail-bw estimator" approach the paper evaluates (and
/// shows to be intrusive).
struct BtcConfig {
  Duration duration{Duration::seconds(300)};  ///< the paper's 5-min intervals
  Duration reverse_delay{Duration::milliseconds(100)};
  Duration throughput_bucket{Duration::seconds(1)};
  tcp::TcpConfig tcp{};  ///< default: unbounded advertised window (BTC)
};

class BtcMeasurement final : public core::Estimator {
 public:

  struct Result {
    Rate average_throughput{};
    /// 1-second throughput samples (the high-variability series of Fig. 15).
    std::vector<Rate> per_bucket;
    std::uint64_t fast_retransmits{0};
    std::uint64_t timeouts{0};
    OnlineStats rtt_secs;  ///< the connection's own RTT samples
  };

  explicit BtcMeasurement(BtcConfig cfg = BtcConfig()) : cfg_{cfg} {}

  /// Runs the transfer on the given simulated path, advancing the
  /// simulator by cfg.duration. Direct-simulator form, for callers that
  /// hold the testbed (supports a custom cfg.tcp, e.g. window-limited
  /// cross flows studies).
  Result run(sim::Simulator& sim, sim::Path& path) const;

  // Estimator interface: the same transfer through the channel's bulk-TCP
  // capability. Throws core::EstimatorError when the channel has none
  // (e.g. the live channel) — BTC cannot degrade to probe streams. The
  // channel owns the TCP implementation, so this form always runs the
  // default (unbounded-window) BTC configuration.
  std::string_view name() const override { return "btc"; }
  std::string config_text() const override;
  bool needs_bulk_tcp() const override { return true; }
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  static Result from_outcome(const core::BulkTransferOutcome& outcome,
                             Duration duration);

  BtcConfig cfg_;
};

}  // namespace pathload::baselines
