// The builtin estimator catalogue.
//
// One registry entry per tool family the paper compares (Section II and
// Sections V-VIII): pathload's SLoPS plus the cprobe, packet-pair, TOPP,
// Delphi, and BTC baselines — and the three tools of the comparative-
// evaluation literature (Ait Ali et al.): Spruce's gap-model pairs,
// IGI/PTR's increasing-gap trains, and pathChirp's exponentially spaced
// chirps. This is the estimator-side mirror of
// scenario::Registry::builtin(): benches, the scenario_runner CLI, tests,
// and docs all resolve the same tool by the same name. The catalogue
// lives here (not in core) because it names the concrete implementations.

#pragma once

#include "core/estimator.hpp"

namespace pathload::baselines {

/// The shipped estimators: pathload, cprobe, pktpair, topp, delphi,
/// spruce, igi, pathchirp, btc. Every entry accepts key=value config
/// overrides (see docs/ESTIMATORS.md for the per-estimator key tables); an
/// unknown key or malformed value fails with a line-numbered
/// core::EstimatorError. Spruce and IGI carry `needs_capacity_hint`: their
/// gap formulas need `capacity_mbps` configured before `run`.
const core::EstimatorRegistry& builtin_estimators();

}  // namespace pathload::baselines
