#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/estimator.hpp"

namespace pathload::baselines {

/// Passive avail-bw estimation from TCP delivery-rate samples.
///
/// Runs one bulk TCP connection (like BTC) but estimates from the
/// connection's per-ACK delivery-rate series (tcp::RateSampler, the
/// tcp_rate.c algorithm) instead of the average goodput: each sample is
/// delivered / max(send_interval, ack_interval), i.e. min(send_rate,
/// ack_rate), so ACK compression can inflate neither endpoint of the
/// estimate. App-limited samples measure the application and are
/// discarded. The reported [low, high] range is the inter-quartile
/// [p25, p75] of the usable samples — the steady-state band the
/// connection actually delivered at, trimmed of slow-start ramp and
/// loss-recovery dips.
///
/// Zero probe packets are sent: like BTC this is "TCP as the measurement"
/// (Section VII), but where BTC averages over the whole transfer, the
/// sampler separates network-limited windows from app-limited ones and
/// reports a distributional range — the passive counterpart the
/// estimator-vs-BBR duel scenarios compare SLoPS against.
struct DeliveryRateConfig {
  Duration duration{Duration::seconds(30)};
  Duration reverse_delay{Duration::milliseconds(100)};
  Duration throughput_bucket{Duration::seconds(1)};
  /// Minimum usable (non-app-limited) samples for a valid estimate.
  int min_samples{8};
};

/// [p25, p75] (in Mb/s) of the non-app-limited samples, or nullopt when
/// none survive the filter. Exposed for the property tests: adding
/// app-limited samples to a series must never move either quantile up.
std::optional<std::pair<double, double>> reduce_delivery_rate(
    const std::vector<core::DeliveryRateSample>& samples);

class DeliveryRateEstimator final : public core::Estimator {
 public:
  explicit DeliveryRateEstimator(DeliveryRateConfig cfg = DeliveryRateConfig())
      : cfg_{cfg} {}

  std::string_view name() const override { return "delivery-rate"; }
  std::string config_text() const override;
  bool needs_bulk_tcp() const override { return true; }
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  DeliveryRateConfig cfg_;
};

}  // namespace pathload::baselines
