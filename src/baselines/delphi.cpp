#include "baselines/delphi.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace pathload::baselines {

DelphiEstimator::Estimate DelphiEstimator::measure(core::ProbeChannel& channel) const {
  Estimate est;
  OnlineStats lambda_bps;
  std::uint32_t next_id = 0xde1f0000u;

  const TimePoint start = channel.now();
  for (int p = 0; p < cfg_.pairs; ++p) {
    if (deadline_exceeded(channel.now() - start)) {
      est.hit_deadline = true;
      break;
    }
    core::StreamSpec spec;
    spec.stream_id = ++next_id;
    spec.packet_count = 2;
    spec.packet_size = cfg_.packet_size;
    spec.period = cfg_.pair_spacing;
    const auto outcome = channel.run_stream(spec);
    channel.idle(cfg_.inter_pair_gap);
    if (outcome.records.size() != 2) continue;

    const double delta_in = spec.period.secs();
    const double delta_out =
        (outcome.records[1].received - outcome.records[0].received).secs();
    if (delta_out <= 0.0) continue;
    // The identity only holds when the queue stayed busy: that requires
    // the output spacing to be at least the second packet's service time.
    const double service =
        cfg_.capacity.transmission_time(DataSize::bytes(spec.packet_size)).secs();
    if (delta_out < service) continue;

    const double lambda =
        (cfg_.capacity.bits_per_sec() * delta_out - spec.packet_size * 8.0) /
        delta_in;
    // Negative samples mean the queue drained (spacing compressed below
    // the busy-queue prediction); clamp to zero like the original does.
    lambda_bps.add(std::max(0.0, lambda));
  }

  est.usable_pairs = static_cast<int>(lambda_bps.count());
  if (est.usable_pairs == 0) return est;
  est.cross_traffic = Rate::bps(lambda_bps.mean());
  est.avail_bw = cfg_.capacity - est.cross_traffic;
  est.valid = est.avail_bw >= Rate::zero();
  if (!est.valid) est.avail_bw = Rate::zero();
  return est;
}

std::string DelphiEstimator::config_text() const {
  std::string out;
  out += core::kv_config_line("capacity_mbps", cfg_.capacity.mbits_per_sec());
  out += core::kv_config_line("pairs", cfg_.pairs);
  out += core::kv_config_line("packet_size", cfg_.packet_size);
  out += core::kv_config_line("pair_spacing_ms", cfg_.pair_spacing.millis());
  out += core::kv_config_line("inter_pair_gap_ms", cfg_.inter_pair_gap.millis());
  return out;
}

core::EstimateReport DelphiEstimator::run(core::ProbeChannel& channel, Rng& /*rng*/) {
  core::MeteredChannel metered{channel};
  const TimePoint start = metered.now();
  const Estimate est = measure(metered);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kAvailBw;
  report.valid = est.valid;
  report.low = report.high = est.avail_bw;
  report.streams_sent = metered.streams();
  report.packets_sent = metered.packets();
  report.bytes_sent = metered.bytes();
  report.elapsed = metered.now() - start;
  report.packets_lost = metered.packets() - metered.received();
  if (est.usable_pairs > 0) {
    report.iterations.push_back({0.0, est.cross_traffic.mbits_per_sec(),
                                 "mean-lambda over " +
                                     std::to_string(est.usable_pairs) + " pairs"});
  }
  core::classify_outcome(report, est.hit_deadline);
  return report;
}

}  // namespace pathload::baselines
