#include "baselines/delphi.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace pathload::baselines {

DelphiEstimator::Estimate DelphiEstimator::measure(core::ProbeChannel& channel) const {
  OnlineStats lambda_bps;
  std::uint32_t next_id = 0xde1f0000u;

  for (int p = 0; p < cfg_.pairs; ++p) {
    core::StreamSpec spec;
    spec.stream_id = ++next_id;
    spec.packet_count = 2;
    spec.packet_size = cfg_.packet_size;
    spec.period = cfg_.pair_spacing;
    const auto outcome = channel.run_stream(spec);
    channel.idle(cfg_.inter_pair_gap);
    if (outcome.records.size() != 2) continue;

    const double delta_in = spec.period.secs();
    const double delta_out =
        (outcome.records[1].received - outcome.records[0].received).secs();
    if (delta_out <= 0.0) continue;
    // The identity only holds when the queue stayed busy: that requires
    // the output spacing to be at least the second packet's service time.
    const double service =
        cfg_.capacity.transmission_time(DataSize::bytes(spec.packet_size)).secs();
    if (delta_out < service) continue;

    const double lambda =
        (cfg_.capacity.bits_per_sec() * delta_out - spec.packet_size * 8.0) /
        delta_in;
    // Negative samples mean the queue drained (spacing compressed below
    // the busy-queue prediction); clamp to zero like the original does.
    lambda_bps.add(std::max(0.0, lambda));
  }

  Estimate est;
  est.usable_pairs = static_cast<int>(lambda_bps.count());
  if (est.usable_pairs == 0) return est;
  est.cross_traffic = Rate::bps(lambda_bps.mean());
  est.avail_bw = cfg_.capacity - est.cross_traffic;
  est.valid = est.avail_bw >= Rate::zero();
  if (!est.valid) est.avail_bw = Rate::zero();
  return est;
}

}  // namespace pathload::baselines
