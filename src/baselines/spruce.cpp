#include "baselines/spruce.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace pathload::baselines {

Rate SpruceEstimator::pair_sample(Rate capacity, Duration delta_in,
                                  Duration delta_out) {
  const double din = delta_in.secs();
  const double dout = delta_out.secs();
  const double a = capacity.bits_per_sec() * (1.0 - (dout - din) / din);
  // Clamp negatives only (a burst bigger than the gap can buy): compressed
  // pairs legitimately sample above C, and keeping them lets downstream
  // jitter cancel in the mean instead of biasing it low — only the final
  // mean is folded back into [0, C].
  return Rate::bps(std::max(a, 0.0));
}

SpruceEstimator::Estimate SpruceEstimator::measure(core::ProbeChannel& channel,
                                                   Rng& rng) const {
  Estimate est;
  OnlineStats samples_bps;
  const Duration delta_in =
      cfg_.capacity.transmission_time(DataSize::bytes(cfg_.packet_size));
  const TimePoint start = channel.now();
  for (int p = 0; p < cfg_.pairs; ++p) {
    if (deadline_exceeded(channel.now() - start)) {
      est.hit_deadline = true;
      break;
    }
    core::StreamSpec spec;
    spec.stream_id = 0x59ce0000u + static_cast<std::uint32_t>(p);
    spec.packet_count = 2;
    spec.packet_size = cfg_.packet_size;
    spec.period = delta_in;
    const auto outcome = channel.run_stream(spec);
    // Poisson inter-pair sampling: the exponential draw comes from the
    // run's seeded Rng, so a fixed seed still replays bit-exactly.
    channel.idle(Duration::seconds(rng.exponential(cfg_.inter_pair_gap.secs())));
    if (outcome.records.size() != 2) continue;
    const Duration delta_out =
        outcome.records[1].received - outcome.records[0].received;
    if (delta_out <= Duration::zero()) continue;
    const Rate a = pair_sample(cfg_.capacity, delta_in, delta_out);
    samples_bps.add(a.bits_per_sec());
    est.samples_mbps.push_back(a.mbits_per_sec());
  }
  est.usable_pairs = static_cast<int>(samples_bps.count());
  if (est.usable_pairs == 0) return est;
  est.avail_bw = std::clamp(Rate::bps(samples_bps.mean()), Rate::zero(),
                            cfg_.capacity);
  est.std_error = Rate::bps(samples_bps.stddev() /
                            std::sqrt(static_cast<double>(samples_bps.count())));
  est.valid = true;
  return est;
}

std::string SpruceEstimator::config_text() const {
  std::string out;
  out += core::kv_config_line("capacity_mbps", cfg_.capacity.mbits_per_sec());
  out += core::kv_config_line("pairs", cfg_.pairs);
  out += core::kv_config_line("packet_size", cfg_.packet_size);
  out += core::kv_config_line("inter_pair_gap_ms", cfg_.inter_pair_gap.millis());
  return out;
}

core::EstimateReport SpruceEstimator::run(core::ProbeChannel& channel, Rng& rng) {
  if (cfg_.capacity <= Rate::zero()) {
    throw core::EstimatorError{
        "estimator 'spruce' needs the bottleneck capacity a priori and no "
        "capacity_mbps hint was configured (the gap model sends pairs at "
        "delta_in = L/C): set capacity_mbps=<C>, e.g. from a pktpair run "
        "(scenario_runner fills the hint from the scenario's narrow link "
        "automatically)"};
  }
  core::MeteredChannel metered{channel};
  const TimePoint start = metered.now();
  const Estimate est = measure(metered, rng);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kAvailBw;
  report.valid = est.valid;
  report.is_range = est.valid;
  const Rate mean = est.avail_bw;
  report.low = std::max(Rate::zero(), mean - est.std_error);
  report.high = std::min(cfg_.capacity, mean + est.std_error);
  report.streams_sent = metered.streams();
  report.packets_sent = metered.packets();
  report.bytes_sent = metered.bytes();
  report.elapsed = metered.now() - start;
  report.packets_lost = metered.packets() - metered.received();
  const double offered = cfg_.capacity.mbits_per_sec();  // pairs leave at C
  report.iterations.reserve(est.samples_mbps.size());
  for (double a : est.samples_mbps) {
    report.iterations.push_back({offered, a, "pair"});
  }
  core::classify_outcome(report, est.hit_deadline);
  return report;
}

}  // namespace pathload::baselines
