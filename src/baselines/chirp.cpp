#include "baselines/chirp.hpp"

#include <algorithm>
#include <cmath>

#include "core/stream.hpp"
#include "util/stats.hpp"

namespace pathload::baselines {

std::vector<PathChirpEstimator::Excursion> PathChirpEstimator::segment_excursions(
    std::span<const double> delays, double decrease_factor, int busy_period_len) {
  std::vector<Excursion> out;
  const std::size_t n = delays.size();
  std::size_t i = 0;
  while (i + 1 < n) {
    if (delays[i + 1] <= delays[i]) {
      ++i;
      continue;
    }
    // Delay rises at i: track the excursion until it falls back to within
    // (peak - base) / F of the base, or the chirp ends first.
    const double base = delays[i];
    double peak = delays[i];
    std::size_t j = i + 1;
    bool terminated = false;
    while (j < n) {
      peak = std::max(peak, delays[j]);
      if (delays[j] <= base + (peak - base) / decrease_factor) {
        terminated = true;
        break;
      }
      ++j;
    }
    const std::size_t end = std::min(j, n - 1);
    // Shorter than the busy-period floor: jitter, not a busy period.
    if (end - i >= static_cast<std::size_t>(busy_period_len)) {
      out.push_back(Excursion{i, end, terminated});
    }
    i = end > i ? end : i + 1;
  }
  return out;
}

double PathChirpEstimator::chirp_estimate_mbps(std::span<const double> delays,
                                               std::span<const double> rates_mbps,
                                               std::span<const double> gaps_secs,
                                               double decrease_factor,
                                               int busy_period_len) {
  const std::size_t spacings = rates_mbps.size();
  if (spacings == 0 || gaps_secs.size() != spacings ||
      delays.size() != spacings + 1) {
    return 0.0;
  }
  const auto excursions =
      segment_excursions(delays, decrease_factor, busy_period_len);

  // Default assignment: the onset rate of persistent self-loading — the
  // last excursion, and only if it never recovered. A chirp that recovered
  // from every excursion (transient bursts only) never saturated, so its
  // fallback is the top chirp rate, exactly as with no excursion at all.
  const bool saturated = !excursions.empty() && !excursions.back().terminated;
  const double fallback = saturated ? rates_mbps[excursions.back().start]
                                    : rates_mbps[spacings - 1];
  std::vector<double> assigned(spacings, fallback);
  for (const Excursion& e : excursions) {
    if (!e.terminated) continue;  // non-terminating: covered by `fallback`
    for (std::size_t k = e.start; k < e.end && k < spacings; ++k) {
      assigned[k] = rates_mbps[k];
    }
  }

  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < spacings; ++k) {
    weighted += assigned[k] * gaps_secs[k];
    total += gaps_secs[k];
  }
  return total > 0.0 ? weighted / total : 0.0;
}

std::vector<Duration> PathChirpEstimator::chirp_gaps() const {
  std::vector<Duration> gaps;
  Rate r = cfg_.min_rate;
  while (true) {
    const Rate capped = std::min(r, cfg_.max_rate);
    gaps.push_back(Duration::seconds(cfg_.packet_size * 8.0 /
                                     capped.bits_per_sec()));
    if (capped >= cfg_.max_rate) break;
    r = r * cfg_.spread_factor;
  }
  return gaps;
}

PathChirpEstimator::Estimate PathChirpEstimator::measure(
    core::ProbeChannel& channel) const {
  Estimate est;
  const std::vector<Duration> gaps = chirp_gaps();
  std::vector<double> gaps_secs;
  std::vector<double> rates_mbps;
  gaps_secs.reserve(gaps.size());
  rates_mbps.reserve(gaps.size());
  for (const Duration& g : gaps) {
    gaps_secs.push_back(g.secs());
    rates_mbps.push_back(Rate::bps(cfg_.packet_size * 8.0 / g.secs()).mbits_per_sec());
  }

  const TimePoint start = channel.now();
  for (int c = 0; c < cfg_.chirps; ++c) {
    if (deadline_exceeded(channel.now() - start)) {
      est.hit_deadline = true;
      break;
    }
    core::StreamSpec spec;
    spec.stream_id = 0xc4120000u + static_cast<std::uint32_t>(c);
    spec.packet_count = static_cast<int>(gaps.size()) + 1;
    spec.packet_size = cfg_.packet_size;
    spec.gaps = gaps;
    const auto outcome = channel.run_stream(spec);
    channel.idle(cfg_.inter_chirp_gap);
    // The excursion signature needs the complete delay sequence; a chirp
    // with losses or reordering is discarded, like the tool does.
    if (outcome.records.size() != static_cast<std::size_t>(spec.packet_count)) {
      continue;
    }
    const std::vector<double> delays = core::relative_owds(outcome);
    est.per_chirp_mbps.push_back(chirp_estimate_mbps(
        delays, rates_mbps, gaps_secs, cfg_.decrease_factor, cfg_.busy_period_len));
  }
  if (est.per_chirp_mbps.empty()) return est;
  est.low = Rate::mbps(percentile(est.per_chirp_mbps, 0.25));
  est.high = Rate::mbps(percentile(est.per_chirp_mbps, 0.75));
  est.valid = true;
  return est;
}

std::string PathChirpEstimator::config_text() const {
  std::string out;
  out += core::kv_config_line("min_rate_mbps", cfg_.min_rate.mbits_per_sec());
  out += core::kv_config_line("max_rate_mbps", cfg_.max_rate.mbits_per_sec());
  out += core::kv_config_line("spread_factor", cfg_.spread_factor);
  out += core::kv_config_line("packet_size", cfg_.packet_size);
  out += core::kv_config_line("chirps", cfg_.chirps);
  out += core::kv_config_line("inter_chirp_gap_ms", cfg_.inter_chirp_gap.millis());
  out += core::kv_config_line("decrease_factor", cfg_.decrease_factor);
  out += core::kv_config_line("busy_period_len", cfg_.busy_period_len);
  return out;
}

core::EstimateReport PathChirpEstimator::run(core::ProbeChannel& channel,
                                             Rng& /*rng*/) {
  core::MeteredChannel metered{channel};
  const TimePoint start = metered.now();
  const Estimate est = measure(metered);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kAvailBw;
  report.valid = est.valid;
  report.is_range = est.valid;
  report.low = est.low;
  report.high = est.high;
  report.streams_sent = metered.streams();
  report.packets_sent = metered.packets();
  report.bytes_sent = metered.bytes();
  report.elapsed = metered.now() - start;
  report.packets_lost = metered.packets() - metered.received();
  const double top = cfg_.max_rate.mbits_per_sec();
  report.iterations.reserve(est.per_chirp_mbps.size());
  for (double d : est.per_chirp_mbps) {
    report.iterations.push_back({top, d, "chirp"});
  }
  core::classify_outcome(report, est.hit_deadline);
  return report;
}

}  // namespace pathload::baselines
