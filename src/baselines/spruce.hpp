#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "util/units.hpp"

namespace pathload::baselines {

/// Spruce (Strauss, Katabi & Kaashoek, IMC 2003): the gap-model baseline
/// the comparative-evaluation literature judges against pathload.
///
/// Spruce sends packet pairs whose *input* gap equals the bottleneck's
/// transmission time of one probe packet, delta_in = L/C. If the queue
/// stays busy between the two probes, the cross traffic that slipped in
/// between widens the gap, and each pair yields an avail-bw sample
///     A_i = C * (1 - (delta_out - delta_in) / delta_in).
/// Pairs leave on a Poisson schedule (exponential inter-pair gaps) so the
/// probes sample the path like an ASTA observer instead of beating against
/// periodic cross traffic; the estimate is the sample mean over K pairs.
///
/// Like Delphi, Spruce needs the capacity C a priori (in practice from a
/// pathrate/pktpair run). Unlike Delphi this repo gives it no default:
/// `capacity_mbps` is a required hint, `run` throws an actionable
/// core::EstimatorError without it, and `needs_capacity_hint()` lets
/// callers plan (scenario_runner fills the hint from the scenario's
/// narrow link; bandwidth_tools --live reports a structured skip).
struct SpruceConfig {
  /// Bottleneck capacity hint; zero means "not provided".
  Rate capacity{Rate::zero()};
  int pairs{100};         ///< the tool's default sample count
  int packet_size{1500};  ///< bytes; delta_in = L/C
  /// Mean of the exponential inter-pair gaps (Poisson sampling). The
  /// default keeps the average probe rate near the tool's ~240 Kb/s.
  Duration inter_pair_gap{Duration::milliseconds(100)};
};

class SpruceEstimator final : public core::Estimator {
 public:
  explicit SpruceEstimator(SpruceConfig cfg = SpruceConfig()) : cfg_{cfg} {}

  struct Estimate {
    Rate avail_bw{};     ///< sample mean over usable pairs
    Rate std_error{};    ///< standard error of the mean
    int usable_pairs{0};
    bool valid{false};
    bool hit_deadline{false};  ///< a run deadline cut the pair loop short
    std::vector<double> samples_mbps;  ///< per-pair A_i (the trace)
  };

  /// One Spruce sample from a received pair: A = C * (1 - (out-in)/in),
  /// clamped to [0, C] (compressed pairs assert full availability, heavy
  /// expansion asserts none — the tool's own clamping).
  static Rate pair_sample(Rate capacity, Duration delta_in, Duration delta_out);

  Estimate measure(core::ProbeChannel& channel, Rng& rng) const;

  // Estimator interface: an avail-bw band, mean +- one standard error
  // over the K pair samples (the center is the classic Spruce estimate).
  std::string_view name() const override { return "spruce"; }
  std::string config_text() const override;
  bool needs_capacity_hint() const override { return true; }
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  SpruceConfig cfg_;
};

}  // namespace pathload::baselines
