#include "baselines/topp.hpp"

#include <vector>

#include "core/stream.hpp"
#include "util/stats.hpp"

namespace pathload::baselines {

ToppEstimator::Estimate ToppEstimator::measure(core::ProbeChannel& channel) const {
  Estimate est;
  std::uint32_t next_id = 0x10bb0000u;

  core::PathloadConfig spec_rules;  // reuse the tool's L/T constraints
  spec_rules.packets_per_stream = cfg_.packets_per_train;

  const TimePoint start = channel.now();
  for (Rate offered = cfg_.min_rate;
       offered <= cfg_.max_rate && !est.hit_deadline;
       offered = offered + cfg_.step) {
    const auto spec_base = core::make_stream_spec(offered, spec_rules);
    OnlineStats measured_bps;
    for (int t = 0; t < cfg_.trains_per_rate; ++t) {
      if (deadline_exceeded(channel.now() - start)) {
        est.hit_deadline = true;
        break;
      }
      auto spec = spec_base;
      spec.stream_id = ++next_id;
      const auto outcome = channel.run_stream(spec);
      channel.idle(cfg_.inter_train_gap);
      if (outcome.records.size() < 2) continue;
      const Duration spread =
          outcome.records.back().received - outcome.records.front().received;
      if (spread <= Duration::zero()) continue;
      const double bits =
          static_cast<double>(outcome.records.size() - 1) * spec.packet_size * 8.0;
      measured_bps.add(bits / spread.secs());
    }
    if (measured_bps.count() == 0) continue;
    est.sweep.emplace_back(spec_base.rate(), Rate::bps(measured_bps.mean()));
  }

  // Collect the overloaded segment: offered rates where Ro/Rm clearly
  // exceeds 1 (receive rate lags the offered rate).
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& [ro, rm] : est.sweep) {
    if (rm <= Rate::zero()) continue;
    const double ratio = ro / rm;
    if (ratio > cfg_.overload_threshold) {
      xs.push_back(ro.bits_per_sec());
      ys.push_back(ratio);
    }
  }
  if (xs.size() < 3) return est;  // never pushed the path past A

  const LinearFit fit = linear_fit(xs, ys);
  if (fit.slope <= 0.0) return est;
  est.capacity = Rate::bps(1.0 / fit.slope);
  // intercept = u (utilization); A = C * (1 - u).
  est.avail_bw = est.capacity * (1.0 - fit.intercept);
  est.valid = est.avail_bw > Rate::zero() && est.avail_bw <= est.capacity;
  return est;
}

std::string ToppEstimator::config_text() const {
  std::string out;
  out += core::kv_config_line("min_rate_mbps", cfg_.min_rate.mbits_per_sec());
  out += core::kv_config_line("max_rate_mbps", cfg_.max_rate.mbits_per_sec());
  out += core::kv_config_line("step_mbps", cfg_.step.mbits_per_sec());
  out += core::kv_config_line("packets_per_train", cfg_.packets_per_train);
  out += core::kv_config_line("trains_per_rate", cfg_.trains_per_rate);
  out += core::kv_config_line("inter_train_gap_ms", cfg_.inter_train_gap.millis());
  out += core::kv_config_line("overload_threshold", cfg_.overload_threshold);
  return out;
}

core::EstimateReport ToppEstimator::run(core::ProbeChannel& channel, Rng& /*rng*/) {
  core::MeteredChannel metered{channel};
  const TimePoint start = metered.now();
  const Estimate est = measure(metered);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kAvailBw;
  report.valid = est.valid;
  report.low = report.high = est.avail_bw;
  if (est.valid) report.capacity = est.capacity;
  report.streams_sent = metered.streams();
  report.packets_sent = metered.packets();
  report.bytes_sent = metered.bytes();
  report.elapsed = metered.now() - start;
  report.packets_lost = metered.packets() - metered.received();
  report.iterations.reserve(est.sweep.size());
  for (const auto& [ro, rm] : est.sweep) {
    report.iterations.push_back(
        {ro.mbits_per_sec(), rm.mbits_per_sec(), "rate-point"});
  }
  core::classify_outcome(report, est.hit_deadline);
  return report;
}

}  // namespace pathload::baselines
