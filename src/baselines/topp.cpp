#include "baselines/topp.hpp"

#include <vector>

#include "core/stream.hpp"
#include "util/stats.hpp"

namespace pathload::baselines {

ToppEstimator::Estimate ToppEstimator::measure(core::ProbeChannel& channel) const {
  Estimate est;
  std::uint32_t next_id = 0x10bb0000u;

  core::PathloadConfig spec_rules;  // reuse the tool's L/T constraints
  spec_rules.packets_per_stream = cfg_.packets_per_train;

  for (Rate offered = cfg_.min_rate; offered <= cfg_.max_rate;
       offered = offered + cfg_.step) {
    const auto spec_base = core::make_stream_spec(offered, spec_rules);
    OnlineStats measured_bps;
    for (int t = 0; t < cfg_.trains_per_rate; ++t) {
      auto spec = spec_base;
      spec.stream_id = ++next_id;
      const auto outcome = channel.run_stream(spec);
      channel.idle(cfg_.inter_train_gap);
      if (outcome.records.size() < 2) continue;
      const Duration spread =
          outcome.records.back().received - outcome.records.front().received;
      if (spread <= Duration::zero()) continue;
      const double bits =
          static_cast<double>(outcome.records.size() - 1) * spec.packet_size * 8.0;
      measured_bps.add(bits / spread.secs());
    }
    if (measured_bps.count() == 0) continue;
    est.sweep.emplace_back(spec_base.rate(), Rate::bps(measured_bps.mean()));
  }

  // Collect the overloaded segment: offered rates where Ro/Rm clearly
  // exceeds 1 (receive rate lags the offered rate).
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& [ro, rm] : est.sweep) {
    if (rm <= Rate::zero()) continue;
    const double ratio = ro / rm;
    if (ratio > cfg_.overload_threshold) {
      xs.push_back(ro.bits_per_sec());
      ys.push_back(ratio);
    }
  }
  if (xs.size() < 3) return est;  // never pushed the path past A

  const LinearFit fit = linear_fit(xs, ys);
  if (fit.slope <= 0.0) return est;
  est.capacity = Rate::bps(1.0 / fit.slope);
  // intercept = u (utilization); A = C * (1 - u).
  est.avail_bw = est.capacity * (1.0 - fit.intercept);
  est.valid = est.avail_bw > Rate::zero() && est.avail_bw <= est.capacity;
  return est;
}

}  // namespace pathload::baselines
