#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "util/units.hpp"

namespace pathload::baselines {

/// Packet-train dispersion ("cprobe"-style) avail-bw estimator.
///
/// cprobe [Carter & Crovella 1996] assumed the dispersion of long packet
/// trains is inversely proportional to the avail-bw. The paper (and
/// Dovrolis et al., INFOCOM 2001) showed that what it actually measures is
/// the *asymptotic dispersion rate* (ADR), a quantity between the avail-bw
/// and the capacity. We implement it faithfully — as a baseline whose bias
/// the comparison harness quantifies against SLoPS.
struct CprobeConfig {
  int trains{4};            ///< cprobe averaged a handful of trains
  int train_length{100};    ///< packets per train
  int packet_size{1500};    ///< bytes; trains go out back-to-back
  Duration period{Duration::microseconds(100)};  ///< tool's max send rate
  Duration inter_train_gap{Duration::milliseconds(100)};
};

class CprobeEstimator final : public core::Estimator {
 public:

  explicit CprobeEstimator(CprobeConfig cfg = CprobeConfig()) : cfg_{cfg} {}

  /// Average dispersion rate over the configured number of trains. When
  /// `train_rates` is given it receives each train's dispersion rate in
  /// Mb/s (the per-iteration trace of the Estimator report). A run
  /// deadline stops the train loop early; `hit_deadline` (when given)
  /// reports that the average covers fewer trains than configured.
  Rate measure(core::ProbeChannel& channel,
               std::vector<double>* train_rates_mbps = nullptr,
               bool* hit_deadline = nullptr) const;

  /// Dispersion rate of a single received train: (n-1)*L*8 / spread.
  static Rate train_dispersion_rate(const core::StreamOutcome& outcome,
                                    int packet_size);

  // Estimator interface. The reported point is the ADR — deliberately
  // labelled as such, since it is *not* the avail-bw (Section II).
  std::string_view name() const override { return "cprobe"; }
  std::string config_text() const override;
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  CprobeConfig cfg_;
};

/// Packet-pair capacity estimator (pathrate-lite): back-to-back pairs whose
/// receiver spacing, after the narrow link, equals L/C_narrow. The median
/// over many pairs filters cross-traffic expansion/compression noise.
struct PacketPairConfig {
  int pairs{60};
  int packet_size{1500};
  Duration inter_pair_gap{Duration::milliseconds(20)};
};

class PacketPairEstimator final : public core::Estimator {
 public:

  explicit PacketPairEstimator(PacketPairConfig cfg = PacketPairConfig()) : cfg_{cfg} {}

  /// Median-of-pairs capacity estimate. A run deadline stops the pair
  /// loop early; the median then covers the pairs sent so far.
  Rate measure(core::ProbeChannel& channel, bool* hit_deadline = nullptr) const;

  // Estimator interface: a capacity point, not an avail-bw estimate.
  std::string_view name() const override { return "pktpair"; }
  std::string config_text() const override;
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  PacketPairConfig cfg_;
};

}  // namespace pathload::baselines
