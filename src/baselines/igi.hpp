#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "util/units.hpp"

namespace pathload::baselines {

/// IGI/PTR (Hu & Steenkiste, JSAC 2003): increasing-gap probe trains with
/// a turning-point search.
///
/// The tool sends trains of equal-sized packets, widening the input gap
/// g from train to train. While the train rate L*8/g exceeds the avail-bw
/// the bottleneck queue stays busy and the output gaps are wider than g;
/// the *turning point* is the first gap where the average output gap
/// matches the input gap (train rate == avail-bw, queue no longer loaded
/// by the probes). At the turning-point train it emits two estimates:
///
///  * IGI: cross traffic from the increased gaps,
///        lambda = C * sum(g_out_i - g | g_out_i > g) / sum(g_out_i),
///    and A_igi = C - lambda — this is the gap-model half and needs the
///    bottleneck capacity C a priori (like Spruce);
///  * PTR: the train's own output rate, (M-1)*L*8 / (t_M - t_1) — the
///    self-loading half, no capacity needed.
///
/// The report is the [min, max] bracket of the two (the tool's authors
/// treat their agreement as a health check), with the per-gap sweep as
/// the iteration trace.
struct IgiConfig {
  /// Bottleneck capacity hint for the IGI formula; zero = not provided
  /// (run throws an actionable error, as for Spruce).
  Rate capacity{Rate::zero()};
  int train_length{60};
  int packet_size{700};
  /// First (smallest) input gap; the initial train rate L*8/g should
  /// exceed the capacity so the search starts on the loaded side.
  Duration init_gap{Duration::microseconds(100)};
  double gap_factor{1.25};  ///< multiplicative gap growth per train
  int max_gap_steps{16};    ///< give up (invalid) past this many trains
  /// Turning point: avg output gap within (1 + tolerance) of the input.
  double gap_tolerance{0.05};
  Duration inter_train_gap{Duration::milliseconds(50)};
};

class IgiEstimator final : public core::Estimator {
 public:
  explicit IgiEstimator(IgiConfig cfg = IgiConfig()) : cfg_{cfg} {}

  /// One gap step of the sweep, for the trace and the tests.
  struct GapStep {
    Duration input_gap{};
    Duration avg_output_gap{};
    Rate output_rate{};   ///< the train's PTR-style dispersion rate
    bool turning{false};  ///< this step satisfied the turning condition
  };

  struct Estimate {
    Rate igi_avail_bw{};  ///< C - lambda at the turning point
    Rate ptr_rate{};      ///< output rate at the turning point
    bool valid{false};
    bool hit_deadline{false};  ///< a run deadline cut the gap sweep short
    std::vector<GapStep> sweep;
  };

  /// The IGI cross-traffic formula over one train's output gaps.
  static Rate igi_cross_traffic(Rate capacity, Duration input_gap,
                                const std::vector<double>& output_gaps_secs);

  Estimate measure(core::ProbeChannel& channel) const;

  // Estimator interface: avail-bw range bracketing the IGI and PTR
  // estimates at the turning point.
  std::string_view name() const override { return "igi"; }
  std::string config_text() const override;
  bool needs_capacity_hint() const override { return true; }
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  IgiConfig cfg_;
};

}  // namespace pathload::baselines
