#include "baselines/delivery_rate.hpp"

#include <algorithm>
#include <cmath>

namespace pathload::baselines {

namespace {

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

std::optional<std::pair<double, double>> reduce_delivery_rate(
    const std::vector<core::DeliveryRateSample>& samples) {
  std::vector<double> usable;
  usable.reserve(samples.size());
  for (const auto& s : samples) {
    if (!s.app_limited && s.rate_mbps > 0.0) usable.push_back(s.rate_mbps);
  }
  if (usable.empty()) return std::nullopt;
  std::sort(usable.begin(), usable.end());
  return std::make_pair(quantile(usable, 0.25), quantile(usable, 0.75));
}

std::string DeliveryRateEstimator::config_text() const {
  std::string out;
  out += core::kv_config_line("duration_s", cfg_.duration.secs());
  out += core::kv_config_line("reverse_delay_ms", cfg_.reverse_delay.millis());
  out += core::kv_config_line("bucket_s", cfg_.throughput_bucket.secs());
  out += core::kv_config_line("min_samples", cfg_.min_samples);
  return out;
}

core::EstimateReport DeliveryRateEstimator::run(core::ProbeChannel& channel,
                                                Rng& /*rng*/) {
  core::BulkChannel* bulk = channel.bulk();
  if (bulk == nullptr) {
    throw core::EstimatorError{
        "estimator 'delivery-rate' needs a bulk-TCP-capable channel, and this "
        "channel has none (it samples the delivery rate of a greedy TCP "
        "connection, not probe streams; run it over a simulated channel, or "
        "pick a probe-stream estimator for this channel)"};
  }

  core::BulkTransferSpec spec;
  spec.duration = cfg_.duration;
  spec.throughput_bucket = cfg_.throughput_bucket;
  spec.reverse_delay = cfg_.reverse_delay;
  // Like BTC, the measurement is one atomic transfer: a deadline shortens
  // it up front (fewer samples, same estimator) rather than interrupting.
  bool shortened = false;
  if (run_deadline().has_value() && *run_deadline() < spec.duration) {
    spec.duration = *run_deadline();
    shortened = true;
  }
  const core::BulkTransferOutcome outcome = bulk->run_bulk_transfer(spec);

  std::size_t usable = 0;
  for (const auto& s : outcome.rate_samples) {
    if (!s.app_limited && s.rate_mbps > 0.0) ++usable;
  }
  const auto band = reduce_delivery_rate(outcome.rate_samples);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kAvailBw;
  report.valid = band.has_value() &&
                 usable >= static_cast<std::size_t>(cfg_.min_samples);
  if (report.valid) {
    report.is_range = true;
    report.low = Rate::mbps(band->first);
    report.high = Rate::mbps(band->second);
    if (shortened) {
      report.outcome = core::EstimateReport::Outcome::kDegraded;
      report.outcome_note = "bulk transfer shortened to " +
                            std::to_string(spec.duration.secs()) +
                            " s by the run deadline";
    }
  } else {
    report.outcome = core::EstimateReport::Outcome::kFailed;
    report.outcome_note =
        "only " + std::to_string(usable) +
        " usable (network-limited) delivery-rate samples; need " +
        std::to_string(cfg_.min_samples);
  }
  // Intrusiveness: no probe packets — the transfer is the measurement,
  // counted in bytes like BTC.
  report.bytes_sent = outcome.bytes_acked;
  report.elapsed = outcome.elapsed;
  report.iterations.reserve(outcome.rate_samples.size());
  for (const auto& s : outcome.rate_samples) {
    report.iterations.push_back(
        {0.0, s.rate_mbps, s.app_limited ? "app-limited" : "sample"});
  }
  return report;
}

}  // namespace pathload::baselines
