#include "baselines/btc.hpp"


#include "tcp/bulk.hpp"

namespace pathload::baselines {

BtcMeasurement::Result BtcMeasurement::from_outcome(
    const core::BulkTransferOutcome& outcome, Duration duration) {
  Result result;
  result.average_throughput = rate_of(outcome.bytes_acked, duration);
  result.per_bucket = outcome.per_bucket;
  result.fast_retransmits = outcome.fast_retransmits;
  result.timeouts = outcome.timeouts;
  for (double s : outcome.rtt_samples_secs) result.rtt_secs.add(s);
  return result;
}

BtcMeasurement::Result BtcMeasurement::run(sim::Simulator& sim,
                                           sim::Path& path) const {
  core::BulkTransferSpec spec;
  spec.duration = cfg_.duration;
  spec.throughput_bucket = cfg_.throughput_bucket;
  spec.reverse_delay = cfg_.reverse_delay;
  return from_outcome(tcp::run_bulk_transfer(sim, path, spec, cfg_.tcp),
                      cfg_.duration);
}

std::string BtcMeasurement::config_text() const {
  std::string out;
  out += core::kv_config_line("duration_s", cfg_.duration.secs());
  out += core::kv_config_line("reverse_delay_ms", cfg_.reverse_delay.millis());
  out += core::kv_config_line("bucket_s", cfg_.throughput_bucket.secs());
  return out;
}

core::EstimateReport BtcMeasurement::run(core::ProbeChannel& channel,
                                         Rng& /*rng*/) {
  core::BulkChannel* bulk = channel.bulk();
  if (bulk == nullptr) {
    throw core::EstimatorError{
        "estimator 'btc' needs a bulk-TCP-capable channel, and this channel "
        "has none (BTC measures with a greedy TCP connection, not probe "
        "streams; run it over a simulated channel, or pick a probe-stream "
        "estimator for this channel)"};
  }

  core::BulkTransferSpec spec;
  spec.duration = cfg_.duration;
  spec.throughput_bucket = cfg_.throughput_bucket;
  spec.reverse_delay = cfg_.reverse_delay;
  // BTC has one atomic measurement, so the deadline shortens the transfer
  // up front rather than interrupting it — a shorter transfer is a real
  // (if noisier) BTC sample, which the outcome marks as degraded.
  bool shortened = false;
  if (run_deadline().has_value() && *run_deadline() < spec.duration) {
    spec.duration = *run_deadline();
    shortened = true;
  }
  const core::BulkTransferOutcome outcome = bulk->run_bulk_transfer(spec);
  const Result result = from_outcome(outcome, spec.duration);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kTcpThroughput;
  report.valid = outcome.bytes_acked.byte_count() > 0;
  report.low = report.high = result.average_throughput;
  if (!report.valid) {
    report.outcome = core::EstimateReport::Outcome::kFailed;
    report.outcome_note = "no payload acknowledged within the transfer";
  } else if (shortened) {
    report.outcome = core::EstimateReport::Outcome::kDegraded;
    report.outcome_note = "bulk transfer shortened to " +
                          std::to_string(spec.duration.secs()) +
                          " s by the run deadline";
  }
  // Intrusiveness: a BTC "probe" is the transfer itself. Count acked
  // payload as the injected bytes; the stream/packet notions do not apply.
  report.bytes_sent = outcome.bytes_acked;
  report.elapsed = outcome.elapsed;
  report.iterations.reserve(result.per_bucket.size());
  for (const Rate& r : result.per_bucket) {
    report.iterations.push_back({0.0, r.mbits_per_sec(), "bucket"});
  }
  return report;
}

}  // namespace pathload::baselines
