#include "baselines/btc.hpp"

namespace pathload::baselines {

BtcMeasurement::Result BtcMeasurement::run(sim::Simulator& sim,
                                           sim::Path& path) const {
  tcp::TcpConnection conn{sim, path, cfg_.tcp, cfg_.reverse_delay};

  // Interpose a throughput monitor between the path egress and the
  // receiver so the per-bucket series reflects arrivals at the receiver.
  sim::ThroughputMonitor monitor{sim, cfg_.throughput_bucket};
  monitor.set_downstream(&conn.receiver());
  path.egress().register_flow(conn.flow(), &monitor);

  const DataSize acked_before = conn.sender().bytes_acked();
  conn.sender().start();
  sim.run_for(cfg_.duration);
  conn.sender().stop();

  Result result;
  result.average_throughput =
      rate_of(conn.sender().bytes_acked() - acked_before, cfg_.duration);
  for (const auto& bucket : monitor.finish()) {
    result.per_bucket.push_back(bucket.rate());
  }
  result.fast_retransmits = conn.sender().fast_retransmits();
  result.timeouts = conn.sender().timeouts();
  for (double s : conn.sender().rtt_samples_secs()) result.rtt_secs.add(s);

  // Restore the receiver as the direct egress handler before the monitor
  // goes out of scope (the connection is destroyed right after anyway).
  path.egress().register_flow(conn.flow(), &conn.receiver());
  return result;
}

}  // namespace pathload::baselines
