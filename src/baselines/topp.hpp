#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "util/units.hpp"

namespace pathload::baselines {

/// TOPP (Trains of Packet Pairs; Melander et al., Globecom 2000): the other
/// rate-vs-avail-bw baseline the paper relates SLoPS to.
///
/// TOPP offers short probe trains at a sweep of rates Ro and measures the
/// received rate Rm. For a single congested (fluid) link:
///     Ro > A  =>  Ro/Rm = Ro/C + u,
/// so on the overloaded segment Ro/Rm is linear in Ro with slope 1/C and
/// intercept u — giving both the tight link's capacity C and its avail-bw
/// A = C(1 - u). Below A, Ro/Rm ~ 1.
struct ToppConfig {
  Rate min_rate{Rate::mbps(1)};
  Rate max_rate{Rate::mbps(20)};
  Rate step{Rate::mbps(1)};
  int packets_per_train{20};
  /// Dispersion of a short train is noisy under bursty cross traffic;
  /// TOPP sends several probes per offered rate and averages.
  int trains_per_rate{4};
  Duration inter_train_gap{Duration::milliseconds(50)};
  /// Ro/Rm above this counts as "overloaded". Finite trains see a small
  /// dispersion expansion even below A (the queue shifts to the new steady
  /// state while the train loads it), and near the knee the Ro/Rm curve is
  /// not linear yet; the threshold keeps the regression on the clearly
  /// linear segment.
  double overload_threshold{1.12};
};

class ToppEstimator final : public core::Estimator {
 public:

  struct Estimate {
    Rate avail_bw{};
    Rate capacity{};
    bool valid{false};
    bool hit_deadline{false};  ///< a run deadline cut the rate sweep short
    /// The raw sweep, for plotting/diagnostics: (offered, measured) pairs.
    std::vector<std::pair<Rate, Rate>> sweep;
  };

  explicit ToppEstimator(ToppConfig cfg = ToppConfig()) : cfg_{cfg} {}

  Estimate measure(core::ProbeChannel& channel) const;

  // Estimator interface: avail-bw point, with the regression capacity as
  // the secondary estimate and the rate sweep as the iteration trace.
  std::string_view name() const override { return "topp"; }
  std::string config_text() const override;
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  ToppConfig cfg_;
};

}  // namespace pathload::baselines
