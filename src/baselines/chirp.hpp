#pragma once

#include <span>
#include <vector>

#include "core/estimator.hpp"
#include "util/units.hpp"

namespace pathload::baselines {

/// pathChirp-style chirp estimator (Ribeiro et al., PAM 2003), the
/// rate-response tool of Liebeherr et al.'s system-theoretic framing: one
/// chirp sweeps a whole range of probing rates with exponentially
/// shrinking inter-packet spacings, so a single N-packet train carries the
/// information a TOPP sweep needs N trains for.
///
/// Spacing k of a chirp probes the instantaneous rate R_k = L*8/g_k, with
/// R_{k+1} = spread_factor * R_k. The receiver-side queuing-delay
/// signature is segmented into *excursions* (delay rises, then either
/// recovers — a transient cross-traffic burst — or never recovers — the
/// chirp has crossed the avail-bw for good):
///
///  * spacings inside a recovering excursion assert E_k = R_k (the
///    momentary avail-bw tracked the probing rate while the queue grew);
///  * every other spacing asserts the rate at which the final
///    *non-terminating* excursion began (the onset of persistent
///    self-loading), or the top chirp rate when every excursion recovered
///    or none occurred (the chirp never saturated the path, so the
///    estimate saturates at its max probing rate);
///
/// and the per-chirp estimate is the gap-weighted average of the E_k. The
/// reported range is the interquartile band of the per-chirp estimates
/// across `chirps` chirps.
///
/// Needs nothing a priori (no capacity hint) and runs over any channel —
/// chirps use StreamSpec's per-packet gap schedule, honored by both the
/// simulated and the live channel.
struct PathChirpConfig {
  Rate min_rate{Rate::mbps(1)};   ///< first (widest) spacing's rate
  Rate max_rate{Rate::mbps(20)};  ///< last (narrowest) spacing's rate
  double spread_factor{1.2};      ///< rate ratio between adjacent spacings
  int packet_size{1000};          ///< bytes
  int chirps{12};                 ///< chirps averaged per measurement
  Duration inter_chirp_gap{Duration::milliseconds(100)};
  /// Excursion termination: the delay has fallen back to within
  /// (peak - base) / decrease_factor of the excursion's starting delay.
  double decrease_factor{1.5};
  /// Minimum spacings an excursion must span to count (jitter filter).
  int busy_period_len{3};
};

class PathChirpEstimator final : public core::Estimator {
 public:
  explicit PathChirpEstimator(PathChirpConfig cfg = PathChirpConfig()) : cfg_{cfg} {}

  /// One excursion of a queuing-delay signature: delays rise at `start`,
  /// and either recover before the chirp ends (`terminated`) or not.
  struct Excursion {
    std::size_t start{0};  ///< packet index where the delay began rising
    std::size_t end{0};    ///< last packet index inside the excursion
    bool terminated{false};
  };

  /// Segment a per-packet queuing-delay signature (seconds, N entries)
  /// into excursions. Excursions spanning fewer than `busy_period_len`
  /// spacings are dropped as jitter. Pure function — the property tests
  /// drive it on hand-built signatures.
  static std::vector<Excursion> segment_excursions(std::span<const double> delays,
                                                   double decrease_factor,
                                                   int busy_period_len);

  /// Per-chirp estimate from the delay signature and the chirp's
  /// per-spacing rates/gaps (N-1 entries each): the gap-weighted average
  /// of the per-spacing rate assignments described above, in Mb/s.
  static double chirp_estimate_mbps(std::span<const double> delays,
                                    std::span<const double> rates_mbps,
                                    std::span<const double> gaps_secs,
                                    double decrease_factor, int busy_period_len);

  /// The chirp's gap schedule for this config: exponentially shrinking
  /// spacings covering [min_rate, max_rate].
  std::vector<Duration> chirp_gaps() const;

  struct Estimate {
    Rate low{};   ///< 25th percentile of per-chirp estimates
    Rate high{};  ///< 75th percentile
    bool valid{false};
    bool hit_deadline{false};  ///< a run deadline cut the chirp loop short
    std::vector<double> per_chirp_mbps;
  };

  Estimate measure(core::ProbeChannel& channel) const;

  // Estimator interface: an avail-bw range (interquartile band of the
  // per-chirp estimates).
  std::string_view name() const override { return "pathchirp"; }
  std::string config_text() const override;
  core::EstimateReport run(core::ProbeChannel& channel, Rng& rng) override;

 private:
  PathChirpConfig cfg_;
};

}  // namespace pathload::baselines
