#include "baselines/estimators.hpp"

#include "baselines/btc.hpp"
#include "baselines/chirp.hpp"
#include "baselines/delivery_rate.hpp"
#include "baselines/delphi.hpp"
#include "baselines/dispersion.hpp"
#include "baselines/igi.hpp"
#include "baselines/spruce.hpp"
#include "baselines/topp.hpp"
#include "core/session.hpp"

namespace pathload::baselines {

namespace {

std::unique_ptr<core::Estimator> make_pathload(const core::KvOverrides& kv) {
  core::PathloadConfig cfg;
  kv.require_known("pathload",
                   {"packets_per_stream", "streams_per_fleet", "fleet_fraction",
                    "omega_mbps", "chi_mbps", "pct_threshold", "pdt_threshold",
                    "max_fleets", "initial_rmax_mbps"});
  cfg.packets_per_stream = kv.integer("packets_per_stream", cfg.packets_per_stream);
  cfg.streams_per_fleet = kv.integer("streams_per_fleet", cfg.streams_per_fleet);
  cfg.fleet_fraction = kv.num("fleet_fraction", cfg.fleet_fraction);
  cfg.omega = kv.mbps("omega_mbps", cfg.omega);
  cfg.chi = kv.mbps("chi_mbps", cfg.chi);
  cfg.trend.pct_threshold = kv.num("pct_threshold", cfg.trend.pct_threshold);
  cfg.trend.pdt_threshold = kv.num("pdt_threshold", cfg.trend.pdt_threshold);
  cfg.max_fleets = kv.integer("max_fleets", cfg.max_fleets);
  if (kv.num("initial_rmax_mbps", 0.0) > 0.0) {
    cfg.initial_rmax = kv.mbps("initial_rmax_mbps", Rate::zero());
  }
  return std::make_unique<core::PathloadSession>(cfg);
}

std::unique_ptr<core::Estimator> make_cprobe(const core::KvOverrides& kv) {
  CprobeConfig cfg;
  kv.require_known("cprobe", {"trains", "train_length", "packet_size",
                              "period_us", "inter_train_gap_ms"});
  cfg.trains = kv.integer("trains", cfg.trains);
  cfg.train_length = kv.integer("train_length", cfg.train_length);
  cfg.packet_size = kv.integer("packet_size", cfg.packet_size);
  cfg.period = Duration::microseconds(kv.num("period_us", cfg.period.micros()));
  cfg.inter_train_gap = kv.millis("inter_train_gap_ms", cfg.inter_train_gap);
  return std::make_unique<CprobeEstimator>(cfg);
}

std::unique_ptr<core::Estimator> make_pktpair(const core::KvOverrides& kv) {
  PacketPairConfig cfg;
  kv.require_known("pktpair", {"pairs", "packet_size", "inter_pair_gap_ms"});
  cfg.pairs = kv.integer("pairs", cfg.pairs);
  cfg.packet_size = kv.integer("packet_size", cfg.packet_size);
  cfg.inter_pair_gap = kv.millis("inter_pair_gap_ms", cfg.inter_pair_gap);
  return std::make_unique<PacketPairEstimator>(cfg);
}

std::unique_ptr<core::Estimator> make_topp(const core::KvOverrides& kv) {
  ToppConfig cfg;
  kv.require_known("topp", {"min_rate_mbps", "max_rate_mbps", "step_mbps",
                            "packets_per_train", "trains_per_rate",
                            "inter_train_gap_ms", "overload_threshold"});
  cfg.min_rate = kv.mbps("min_rate_mbps", cfg.min_rate);
  cfg.max_rate = kv.mbps("max_rate_mbps", cfg.max_rate);
  cfg.step = kv.mbps("step_mbps", cfg.step);
  cfg.packets_per_train = kv.integer("packets_per_train", cfg.packets_per_train);
  cfg.trains_per_rate = kv.integer("trains_per_rate", cfg.trains_per_rate);
  cfg.inter_train_gap = kv.millis("inter_train_gap_ms", cfg.inter_train_gap);
  cfg.overload_threshold = kv.num("overload_threshold", cfg.overload_threshold);
  return std::make_unique<ToppEstimator>(cfg);
}

std::unique_ptr<core::Estimator> make_delphi(const core::KvOverrides& kv) {
  DelphiConfig cfg;
  kv.require_known("delphi", {"capacity_mbps", "pairs", "packet_size",
                              "pair_spacing_ms", "inter_pair_gap_ms"});
  cfg.capacity = kv.mbps("capacity_mbps", cfg.capacity);
  cfg.pairs = kv.integer("pairs", cfg.pairs);
  cfg.packet_size = kv.integer("packet_size", cfg.packet_size);
  cfg.pair_spacing = kv.millis("pair_spacing_ms", cfg.pair_spacing);
  cfg.inter_pair_gap = kv.millis("inter_pair_gap_ms", cfg.inter_pair_gap);
  return std::make_unique<DelphiEstimator>(cfg);
}

std::unique_ptr<core::Estimator> make_spruce(const core::KvOverrides& kv) {
  SpruceConfig cfg;
  kv.require_known("spruce",
                   {"capacity_mbps", "pairs", "packet_size", "inter_pair_gap_ms"});
  cfg.capacity = kv.mbps("capacity_mbps", cfg.capacity);
  cfg.pairs = kv.integer("pairs", cfg.pairs);
  cfg.packet_size = kv.integer("packet_size", cfg.packet_size);
  cfg.inter_pair_gap = kv.millis("inter_pair_gap_ms", cfg.inter_pair_gap);
  return std::make_unique<SpruceEstimator>(cfg);
}

std::unique_ptr<core::Estimator> make_igi(const core::KvOverrides& kv) {
  IgiConfig cfg;
  kv.require_known("igi", {"capacity_mbps", "train_length", "packet_size",
                           "init_gap_us", "gap_factor", "max_gap_steps",
                           "gap_tolerance", "inter_train_gap_ms"});
  cfg.capacity = kv.mbps("capacity_mbps", cfg.capacity);
  cfg.train_length = kv.integer("train_length", cfg.train_length);
  cfg.packet_size = kv.integer("packet_size", cfg.packet_size);
  cfg.init_gap = Duration::microseconds(kv.num("init_gap_us", cfg.init_gap.micros()));
  cfg.gap_factor = kv.num("gap_factor", cfg.gap_factor);
  cfg.max_gap_steps = kv.integer("max_gap_steps", cfg.max_gap_steps);
  cfg.gap_tolerance = kv.num("gap_tolerance", cfg.gap_tolerance);
  cfg.inter_train_gap = kv.millis("inter_train_gap_ms", cfg.inter_train_gap);
  return std::make_unique<IgiEstimator>(cfg);
}

std::unique_ptr<core::Estimator> make_pathchirp(const core::KvOverrides& kv) {
  PathChirpConfig cfg;
  kv.require_known("pathchirp",
                   {"min_rate_mbps", "max_rate_mbps", "spread_factor",
                    "packet_size", "chirps", "inter_chirp_gap_ms",
                    "decrease_factor", "busy_period_len"});
  cfg.min_rate = kv.mbps("min_rate_mbps", cfg.min_rate);
  cfg.max_rate = kv.mbps("max_rate_mbps", cfg.max_rate);
  cfg.spread_factor = kv.num("spread_factor", cfg.spread_factor);
  cfg.packet_size = kv.integer("packet_size", cfg.packet_size);
  cfg.chirps = kv.integer("chirps", cfg.chirps);
  cfg.inter_chirp_gap = kv.millis("inter_chirp_gap_ms", cfg.inter_chirp_gap);
  cfg.decrease_factor = kv.num("decrease_factor", cfg.decrease_factor);
  cfg.busy_period_len = kv.integer("busy_period_len", cfg.busy_period_len);
  if (cfg.min_rate <= Rate::zero() || cfg.max_rate < cfg.min_rate) {
    throw core::EstimatorError{
        "pathchirp: need 0 < min_rate_mbps <= max_rate_mbps"};
  }
  if (cfg.spread_factor <= 1.0) {
    throw core::EstimatorError{"pathchirp: spread_factor must be > 1"};
  }
  return std::make_unique<PathChirpEstimator>(cfg);
}

std::unique_ptr<core::Estimator> make_btc(const core::KvOverrides& kv) {
  BtcConfig cfg;
  kv.require_known("btc", {"duration_s", "reverse_delay_ms", "bucket_s"});
  cfg.duration = kv.seconds("duration_s", cfg.duration);
  cfg.reverse_delay = kv.millis("reverse_delay_ms", cfg.reverse_delay);
  cfg.throughput_bucket = kv.seconds("bucket_s", cfg.throughput_bucket);
  return std::make_unique<BtcMeasurement>(cfg);
}

std::unique_ptr<core::Estimator> make_delivery_rate(const core::KvOverrides& kv) {
  DeliveryRateConfig cfg;
  kv.require_known("delivery-rate",
                   {"duration_s", "reverse_delay_ms", "bucket_s", "min_samples"});
  cfg.duration = kv.seconds("duration_s", cfg.duration);
  cfg.reverse_delay = kv.millis("reverse_delay_ms", cfg.reverse_delay);
  cfg.throughput_bucket = kv.seconds("bucket_s", cfg.throughput_bucket);
  cfg.min_samples = kv.integer("min_samples", cfg.min_samples);
  return std::make_unique<DeliveryRateEstimator>(cfg);
}

core::EstimatorRegistry make_builtin() {
  core::EstimatorRegistry reg;
  reg.add({"pathload",
           "SLoPS: fleets of periodic streams, OWD-trend search (the paper's tool)",
           "avail-bw range", /*needs_bulk_tcp=*/false, make_pathload});
  reg.add({"cprobe",
           "packet-train dispersion; measures the ADR, not the avail-bw (Sec. II)",
           "ADR point", /*needs_bulk_tcp=*/false, make_cprobe});
  reg.add({"pktpair",
           "back-to-back packet pairs; narrow-link capacity, load-blind",
           "capacity point", /*needs_bulk_tcp=*/false, make_pktpair});
  reg.add({"topp",
           "trains of pairs over a rate sweep; avail-bw + capacity from the knee",
           "avail-bw point", /*needs_bulk_tcp=*/false, make_topp});
  reg.add({"delphi",
           "single-queue pair identity, needs capacity a priori (Sec. II critique)",
           "avail-bw point", /*needs_bulk_tcp=*/false, make_delphi});
  reg.add({"spruce",
           "gap-model pairs at the narrow-link rate; needs a capacity hint",
           "avail-bw range", /*needs_bulk_tcp=*/false, make_spruce,
           /*needs_capacity_hint=*/true});
  reg.add({"igi",
           "increasing-gap trains, turning-point search; IGI + PTR estimates",
           "avail-bw range", /*needs_bulk_tcp=*/false, make_igi,
           /*needs_capacity_hint=*/true});
  reg.add({"pathchirp",
           "exponentially spaced chirps with excursion segmentation",
           "avail-bw range", /*needs_bulk_tcp=*/false, make_pathchirp});
  reg.add({"btc",
           "greedy TCP bulk transfer (RFC 3148); intrusive, >= A under elastic load",
           "tcp-throughput point", /*needs_bulk_tcp=*/true, make_btc});
  reg.add({"delivery-rate",
           "passive p25-p75 of TCP per-ACK delivery-rate samples (tcp_rate.c)",
           "avail-bw range", /*needs_bulk_tcp=*/true, make_delivery_rate});
  return reg;
}

}  // namespace

const core::EstimatorRegistry& builtin_estimators() {
  static const core::EstimatorRegistry reg = make_builtin();
  return reg;
}

}  // namespace pathload::baselines
