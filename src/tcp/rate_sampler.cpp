#include "tcp/rate_sampler.hpp"

#include <algorithm>

namespace pathload::tcp {

void RateSampler::on_sent(std::uint64_t seq, TimePoint now, bool app_limited) {
  if (inflight_.empty()) {
    // Nothing in flight: start the send-rate window here, and start the
    // delivery clock on the very first transmission (tcp_rate_skb_sent:
    // "start delivery rate samples from the time we received the most
    // recent ACK" — or, before any ACK, from the first send).
    first_tx_ = now;
    if (!started_) {
      delivered_time_ = now;
      started_ = true;
    }
  }
  inflight_.push_back(
      TxRecord{seq, now, first_tx_, delivered_, delivered_time_, app_limited});
}

std::optional<RateSample> RateSampler::on_ack(std::uint64_t cum_ack,
                                              TimePoint now) {
  // Pop every record the cumulative ACK covers; the *most recently sent*
  // of them anchors the sample (append order is send order, so it is the
  // last one popped). Using the latest send keeps the windows fresh: its
  // snapshot started when the previous delivery event happened.
  std::optional<TxRecord> best;
  while (!inflight_.empty() && inflight_.front().seq < cum_ack) {
    best = inflight_.front();
    inflight_.pop_front();
  }
  if (cum_ack > delivered_) {
    delivered_ = cum_ack;
    delivered_time_ = now;
  }
  if (!best.has_value()) return std::nullopt;

  // Restart the send-rate window at the anchor's transmission: the next
  // sample measures from this delivery event forward.
  first_tx_ = best->sent_at;

  const std::uint64_t newly = delivered_ - best->delivered;
  if (newly == 0) return std::nullopt;
  const Duration send_interval = best->sent_at - best->first_tx;
  const Duration ack_interval = now - best->delivered_at;
  const Duration interval = std::max(send_interval, ack_interval);
  if (interval <= Duration::zero()) return std::nullopt;

  RateSample sample;
  sample.delivered =
      DataSize::bytes(static_cast<std::int64_t>(newly) * mss_bytes_);
  sample.interval = interval;
  sample.delivery_rate = rate_of(sample.delivered, interval);
  sample.app_limited = best->app_limited;
  sample.at = now;
  if (recording_) samples_.push_back(sample);
  return sample;
}

}  // namespace pathload::tcp
