#include "tcp/bulk.hpp"

#include "sim/monitor.hpp"

namespace pathload::tcp {

core::BulkTransferOutcome run_bulk_transfer(sim::Simulator& sim, sim::Path& path,
                                            const core::BulkTransferSpec& spec,
                                            const TcpConfig& tcp) {
  TcpConnection conn{sim, path, tcp, spec.reverse_delay};

  // Interpose a throughput monitor between the path egress and the
  // receiver so the per-bucket series reflects arrivals at the receiver.
  sim::ThroughputMonitor monitor{sim, spec.throughput_bucket};
  monitor.set_downstream(&conn.receiver());
  path.egress().register_flow(conn.flow(), &monitor);

  const DataSize acked_before = conn.sender().bytes_acked();
  const TimePoint start = sim.now();
  conn.sender().rate_sampler().set_recording(true);
  conn.sender().start();
  sim.run_for(spec.duration);
  conn.sender().stop();

  core::BulkTransferOutcome outcome;
  outcome.bytes_acked = conn.sender().bytes_acked() - acked_before;
  outcome.elapsed = sim.now() - start;
  for (const auto& bucket : monitor.finish()) {
    outcome.per_bucket.push_back(bucket.rate());
  }
  outcome.fast_retransmits = conn.sender().fast_retransmits();
  outcome.timeouts = conn.sender().timeouts();
  outcome.rtt_samples_secs = conn.sender().rtt_samples_secs();
  for (const auto& s : conn.sender().rate_sampler().samples()) {
    core::DeliveryRateSample out;
    out.rate_mbps = s.delivery_rate.mbits_per_sec();
    out.interval_s = s.interval.secs();
    out.delivered_bytes = s.delivered.byte_count();
    out.app_limited = s.app_limited;
    out.at_s = (s.at - start).secs();
    outcome.rate_samples.push_back(out);
  }

  // Restore the receiver as the direct egress handler before the monitor
  // goes out of scope (the connection is destroyed right after anyway).
  path.egress().register_flow(conn.flow(), &conn.receiver());
  return outcome;
}

}  // namespace pathload::tcp
