#pragma once

#include "core/channel.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"

namespace pathload::tcp {

/// Run one greedy TCP connection over `path` for `spec.duration` and report
/// what it achieved. This is the single implementation behind both the BTC
/// baseline's direct simulator API (`baselines::BtcMeasurement::run`) and
/// the `core::BulkChannel` capability of `scenario::SimProbeChannel` — the
/// two must stay one code path so channel-driven BTC is bit-identical to
/// the bespoke form.
core::BulkTransferOutcome run_bulk_transfer(sim::Simulator& sim, sim::Path& path,
                                            const core::BulkTransferSpec& spec,
                                            const TcpConfig& tcp = TcpConfig{});

}  // namespace pathload::tcp
