// Per-ACK delivery-rate sampling, after Linux tcp_rate.c (SNIPPETS.md
// Snippet 2 / the BBR measurement substrate).
//
// A delivery-rate sample estimates the goodput the network actually
// sustained over the flight of one acknowledged packet:
//
//   send_rate = delivered / (P.sent_at   - P.first_tx_at_send)
//   ack_rate  = delivered / (ack_time    - P.delivered_at_send)
//   rate      = delivered / max(send_interval, ack_interval)
//             = min(send_rate, ack_rate)
//
// where `delivered` is the payload newly acknowledged since packet P was
// transmitted. Taking the *slower* of the two clocks guards against ACK
// compression/decimation: a burst of compressed ACKs can make the ack
// interval arbitrarily small, but it cannot shrink the send interval, so
// the min never overestimates the path. (The design deliberately avoids
// inter-packet-spacing estimators — per-packet gaps through routers are
// far too noisy; whole-flight ratios are robust.)
//
// Samples taken while the sender was application-limited (no data waiting
// when the sampled window opened) measure the application, not the
// network; they carry `app_limited = true` and consumers must not let
// them *raise* a bandwidth estimate.
//
// The sampler is an observer: it never perturbs the sender's float
// sequence, so attaching one to a golden-anchored connection keeps the
// trace bit-identical.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::tcp {

/// One per-ACK delivery-rate sample.
struct RateSample {
  Rate delivery_rate{};   ///< min(send_rate, ack_rate)
  Duration interval{};    ///< the max(send, ack) interval the rate is over
  DataSize delivered{};   ///< payload newly delivered over the interval
  bool app_limited{false};  ///< the window opened with no data waiting
  TimePoint at{};         ///< ACK arrival that produced the sample
};

/// Tracks per-segment transmit snapshots and turns cumulative ACKs into
/// RateSamples. Sequence numbers are in MSS-sized segments, matching
/// TcpSender. Recording of the full sample history is opt-in (bulk
/// transfers turn it on; long-lived cross flows only feed the latest
/// sample to their congestion control).
class RateSampler {
 public:
  explicit RateSampler(std::int32_t mss_bytes) : mss_bytes_{mss_bytes} {}

  /// Snapshot the delivery state at the transmission of segment `seq`
  /// (first transmissions and retransmissions alike — the retransmit's
  /// snapshot supersedes the original's, as it was sent later).
  void on_sent(std::uint64_t seq, TimePoint now, bool app_limited);

  /// The cumulative ACK advanced to `cum_ack` at `now`. Returns the
  /// delivery-rate sample over the most recently sent acknowledged
  /// segment's window, or nullopt when no rate is computable (nothing
  /// newly covered, or a zero-width interval).
  std::optional<RateSample> on_ack(std::uint64_t cum_ack, TimePoint now);

  /// Keep every sample in samples() (off by default: long-lived flows
  /// would otherwise accumulate history nobody reads).
  void set_recording(bool on) { recording_ = on; }
  const std::vector<RateSample>& samples() const { return samples_; }

  /// Cumulative segments delivered (== the highest cumulative ACK seen).
  std::uint64_t delivered_segments() const { return delivered_; }

 private:
  /// Per-transmission snapshot (the scb->tx block of tcp_rate.c).
  struct TxRecord {
    std::uint64_t seq;
    TimePoint sent_at;
    TimePoint first_tx;     ///< start of the send-rate window at send time
    std::uint64_t delivered;  ///< segments delivered when this was sent
    TimePoint delivered_at;   ///< time of the last delivery event at send
    bool app_limited;
  };

  std::int32_t mss_bytes_;
  std::deque<TxRecord> inflight_;  ///< append order == send order
  std::uint64_t delivered_{0};
  TimePoint delivered_time_{};
  TimePoint first_tx_{};
  bool started_{false};
  bool recording_{false};
  std::vector<RateSample> samples_;
};

}  // namespace pathload::tcp
