// The responsive cross-workload layer: TCP flows bound to path segments.
//
// Open-loop generators (src/sim/traffic.hpp) offer a fixed load no matter
// what the path does; real cross traffic is dominated by *responsive* TCP
// flows whose rate reacts to queueing and loss. A SegmentTcpFlow drives one
// such flow over any contiguous hop range [first, last] of a sim::Path —
// end-to-end, partially overlapping the measured path, or hop-local
// (first == last) — reusing TcpSender/TcpReceiver and the per-segment
// FlowDemux seam. Three shapes cover the scenario catalogue:
//
//  * greedy       — the application always has data (BTC-style background);
//  * rwnd-capped  — TcpConfig::advertised_window models receiver- or
//                   application-limited transfers (the Section VII mix);
//  * on/off restart — a fresh connection (slow start again) every ON
//                   period, idle for OFF: flash-crowd / short-transfer
//                   churn rather than one long-lived flow.
//
// ScenarioInstance owns these for `flow` spec entries; benches may also
// construct them directly. No randomness: a flow's behaviour is fully
// determined by the path, so flow-bearing runs stay bit-reproducible.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/flow.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"
#include "util/units.hpp"

namespace pathload::tcp {

/// Shape of one responsive cross flow bound to a path segment. All times
/// are measured from launch() — for scenario flows, from traffic start, so
/// warmup is included just like the ramp models' windows.
struct SegmentFlowConfig {
  sim::Segment segment{};  ///< hop range; the default is the whole path
  /// Reno parameters; set tcp.advertised_window for an rwnd-capped flow,
  /// leave it unset for a greedy one.
  TcpConfig tcp{};
  Duration reverse_delay{Duration::milliseconds(50)};  ///< uncongested ACK path
  Duration start{Duration::zero()};   ///< first connection begins here
  std::optional<Duration> stop{};     ///< flow ends here (unset: never)
  /// Restart variant: both set => cycle a fresh connection ON for
  /// `on_period`, then idle for `off_period`, until `stop`. Each ON period
  /// is a new connection — slow start begins again.
  std::optional<Duration> on_period{};
  std::optional<Duration> off_period{};

  bool cycles() const { return on_period.has_value() && off_period.has_value(); }
};

/// One responsive TCP cross flow on a segment of a path.
///
/// Owns the live TcpConnection (created at each ON transition, destroyed at
/// each OFF), a single re-armable timer driving the start/stop/cycle state
/// machine, and cumulative counters that survive restarts. Must be
/// destroyed before its Simulator (it holds a TimerHandle).
class SegmentTcpFlow final : public sim::ResponsiveFlow {
 public:
  SegmentTcpFlow(sim::Simulator& sim, sim::Path& path, SegmentFlowConfig cfg);

  /// Schedule the flow's first connection `cfg.start` from now. Call once,
  /// before running the simulation past the start time.
  void launch() override;

  /// True while a connection is up (ON period, after start, before stop).
  bool active() const override { return conn_ != nullptr; }
  const SegmentFlowConfig& config() const { return cfg_; }

  /// Payload acknowledged across every connection so far, restarts included.
  DataSize bytes_acked() const override;
  /// Connections begun so far (1 for non-cycling flows that have started).
  std::uint64_t connections_started() const override { return connections_; }
  /// Cumulative RTO timeouts across connections.
  std::uint64_t timeouts() const override;

  /// The live connection, or nullptr while idle. Flow ids change across
  /// restarts (each connection draws a fresh id).
  TcpConnection* connection() { return conn_.get(); }

  SegmentTcpFlow(const SegmentTcpFlow&) = delete;
  SegmentTcpFlow& operator=(const SegmentTcpFlow&) = delete;

 private:
  enum class Phase { kIdle, kWaitingOn, kOn };

  void on_timer();
  void begin_connection();
  void end_connection();
  /// Absolute stop time, or nullopt.
  std::optional<TimePoint> stop_at() const;

  sim::Simulator& sim_;
  sim::Path& path_;
  SegmentFlowConfig cfg_;
  TimePoint epoch_{};
  Phase phase_{Phase::kIdle};
  sim::Simulator::TimerHandle timer_;
  std::unique_ptr<TcpConnection> conn_;

  DataSize completed_bytes_{};
  std::uint64_t completed_timeouts_{0};
  std::uint64_t connections_{0};
};

}  // namespace pathload::tcp
