#include "tcp/cong.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "tcp/rate_sampler.hpp"
#include "tcp/reno.hpp"

namespace pathload::tcp {

namespace {

// --- reno (legacy, bit-frozen) ---------------------------------------------
// Every expression below is lifted verbatim from the pre-seam TcpSender and
// must stay byte-for-byte: the v1 golden anchors (and v2 mode=packet
// anchors) were captured from these exact floating-point sequences.

class RenoOps : public CongestionOps {
 public:
  explicit RenoOps(const TcpConfig& cfg)
      : cwnd_{cfg.initial_cwnd}, ssthresh_{cfg.initial_ssthresh} {}

  std::string_view name() const override { return "reno"; }
  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }

  void on_ack(double newly_acked, const Context&) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += newly_acked;  // slow start: exponential growth per RTT
    } else {
      cwnd_ += newly_acked / cwnd_;  // congestion avoidance: +1 MSS per RTT
    }
  }
  void on_recovery_exit(const Context&) override {
    // Full recovery: deflate to ssthresh (Reno).
    cwnd_ = ssthresh_;
  }
  void on_partial_ack(double newly_acked, const Context&) override {
    cwnd_ = std::max(ssthresh_, cwnd_ - newly_acked + 1.0);
  }
  void on_dup_ack_inflate(const Context&) override {
    cwnd_ += 1.0;  // window inflation per extra dup ACK
  }
  void on_enter_recovery(int dupack_threshold, const Context&) override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_ + dupack_threshold;
  }
  void on_rto(const Context&) override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = 1.0;
  }

 protected:
  double cwnd_;
  double ssthresh_;
};

// --- reno-rfc ---------------------------------------------------------------
// The two RFC 5681 conformance fixes, kept out of the bit-frozen default:
//  §3.1/§3.2 — ssthresh = max(FlightSize/2, 2). The legacy policy halves
//    cwnd, which an rwnd-capped flow grows without bound (the advertised
//    window caps sending, not growth), so its post-loss ssthresh can be
//    arbitrarily inflated relative to what was actually in flight.
//  §3.1 — a stretch/cumulative ACK in slow start must not carry cwnd past
//    ssthresh in one jump; the increment is clamped at the boundary and
//    the remainder grows linearly (congestion avoidance from the boundary).

class RenoRfcOps : public RenoOps {
 public:
  explicit RenoRfcOps(const TcpConfig& cfg) : RenoOps{cfg} {}

  std::string_view name() const override { return "reno-rfc"; }

  void on_ack(double newly_acked, const Context&) override {
    if (cwnd_ < ssthresh_) {
      const double below = std::min(newly_acked, ssthresh_ - cwnd_);
      cwnd_ += below;
      const double rest = newly_acked - below;
      if (rest > 0.0) cwnd_ += rest / cwnd_;
    } else {
      cwnd_ += newly_acked / cwnd_;
    }
  }
  void on_enter_recovery(int dupack_threshold, const Context& ctx) override {
    ssthresh_ = std::max(ctx.flight_size / 2.0, 2.0);
    cwnd_ = ssthresh_ + dupack_threshold;
  }
  void on_rto(const Context& ctx) override {
    ssthresh_ = std::max(ctx.flight_size / 2.0, 2.0);
    cwnd_ = 1.0;
  }
};

// --- cubic ------------------------------------------------------------------
// RFC 8312 window growth: after a loss at W_max, cwnd follows
// C*(t - K)^3 + W_max with K = cbrt(W_max * beta' / C) — concave up to the
// old ceiling, convex (probing) past it. Slow start and the recovery
// mechanics are the RFC-conformant Reno ones; FlightSize-based ssthresh
// with beta = 0.7 (so the decrease is gentler than Reno's half).

constexpr double kCubicC = 0.4;
constexpr double kCubicBeta = 0.7;

class CubicOps : public CongestionOps {
 public:
  explicit CubicOps(const TcpConfig& cfg)
      : cwnd_{cfg.initial_cwnd}, ssthresh_{cfg.initial_ssthresh} {}

  std::string_view name() const override { return "cubic"; }
  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }

  void on_ack(double newly_acked, const Context& ctx) override {
    if (cwnd_ < ssthresh_) {
      const double below = std::min(newly_acked, ssthresh_ - cwnd_);
      cwnd_ += below;
      newly_acked -= below;
      if (newly_acked <= 0.0) return;
    }
    if (!epoch_.has_value()) {
      epoch_ = ctx.now;
      w_max_ = std::max(w_max_, cwnd_);
      k_ = std::cbrt(w_max_ * (1.0 - kCubicBeta) / kCubicC);
    }
    const double t = (ctx.now - *epoch_).secs() + ctx.srtt.secs();
    const double d = t - k_;
    const double target = w_max_ + kCubicC * d * d * d;
    // Per-ACK form of the RFC's (W_cubic(t+RTT) - cwnd)/cwnd growth; when
    // the profile sits below cwnd (plateau around W_max) grow minimally so
    // the window never stalls outright.
    const double grow = std::max((target - cwnd_) / cwnd_, 0.01 / cwnd_);
    cwnd_ += grow * newly_acked;
  }
  void on_recovery_exit(const Context&) override { cwnd_ = ssthresh_; }
  void on_partial_ack(double newly_acked, const Context&) override {
    cwnd_ = std::max(ssthresh_, cwnd_ - newly_acked + 1.0);
  }
  void on_dup_ack_inflate(const Context&) override { cwnd_ += 1.0; }
  void on_enter_recovery(int dupack_threshold, const Context& ctx) override {
    w_max_ = std::max(ctx.flight_size, 2.0);
    ssthresh_ = std::max(ctx.flight_size * kCubicBeta, 2.0);
    cwnd_ = ssthresh_ + dupack_threshold;
    epoch_.reset();
  }
  void on_rto(const Context& ctx) override {
    w_max_ = std::max(ctx.flight_size, 2.0);
    ssthresh_ = std::max(ctx.flight_size / 2.0, 2.0);
    cwnd_ = 1.0;
    epoch_.reset();
  }

 private:
  double cwnd_;
  double ssthresh_;
  double w_max_{0.0};
  double k_{0.0};
  std::optional<TimePoint> epoch_{};
};

// --- bbr --------------------------------------------------------------------
// Model-based control driven by the RateSampler: estimate the bottleneck
// bandwidth as a windowed maximum of delivery-rate samples (app-limited
// samples are discarded — they measure the application and must never
// raise the path model) and the propagation delay as a running minimum of
// the RTT estimate, then pin cwnd to 2x the modeled BDP. Loss does not
// shrink the model: recovery runs the standard mechanics (so holes are
// retransmitted promptly), and on exit the window snaps back to the model
// instead of a halved ssthresh. Before the model has both a bandwidth and
// an RTT, the policy grows like slow start (BBR's STARTUP).

constexpr double kBbrCwndGain = 2.0;
constexpr double kBbrMinCwnd = 4.0;
constexpr Duration kBbrBwWindow = Duration::seconds(10);

class BbrOps : public CongestionOps {
 public:
  explicit BbrOps(const TcpConfig& cfg)
      : mss_bytes_{static_cast<double>(cfg.mss_bytes)},
        cwnd_{cfg.initial_cwnd},
        ssthresh_{cfg.initial_ssthresh} {}

  std::string_view name() const override { return "bbr"; }
  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }

  void on_ack(double newly_acked, const Context& ctx) override {
    update_model(ctx);
    if (const double target = model_cwnd(); target > 0.0) {
      cwnd_ = target;
    } else {
      cwnd_ += newly_acked;  // STARTUP: no model yet, fill the pipe fast
    }
  }
  void on_recovery_exit(const Context& ctx) override {
    update_model(ctx);
    const double target = model_cwnd();
    cwnd_ = target > 0.0 ? target : ssthresh_;
  }
  void on_partial_ack(double newly_acked, const Context& ctx) override {
    update_model(ctx);
    cwnd_ = std::max(ssthresh_, cwnd_ - newly_acked + 1.0);
  }
  void on_dup_ack_inflate(const Context&) override { cwnd_ += 1.0; }
  void on_enter_recovery(int dupack_threshold, const Context& ctx) override {
    // ssthresh keeps the recovery bookkeeping honest (partial-ACK floor),
    // but the model, not the loss, decides the post-recovery window.
    ssthresh_ = std::max(ctx.flight_size / 2.0, 2.0);
    cwnd_ = std::max(model_cwnd(), ssthresh_ + dupack_threshold);
  }
  void on_rto(const Context& ctx) override {
    ssthresh_ = std::max(ctx.flight_size / 2.0, 2.0);
    cwnd_ = 1.0;  // conservative restart; the model re-inflates on new ACKs
  }

  /// Modeled bottleneck bandwidth (zero until a usable sample arrived).
  Rate bandwidth_estimate() const {
    double best = 0.0;
    for (const auto& s : bw_window_) best = std::max(best, s.bps);
    return Rate::bps(best);
  }

 private:
  struct BwSample {
    TimePoint at;
    double bps;
  };

  void update_model(const Context& ctx) {
    if (ctx.sample != nullptr && !ctx.sample->app_limited) {
      bw_window_.push_back(
          BwSample{ctx.now, ctx.sample->delivery_rate.bits_per_sec()});
    }
    while (!bw_window_.empty() && ctx.now - bw_window_.front().at > kBbrBwWindow) {
      bw_window_.erase(bw_window_.begin());
    }
    if (ctx.srtt > Duration::zero()) {
      if (!min_rtt_.has_value() || ctx.srtt < *min_rtt_) min_rtt_ = ctx.srtt;
    }
  }

  /// kBbrCwndGain x BDP in segments, or 0 while the model is incomplete.
  double model_cwnd() const {
    const double bw = bandwidth_estimate().bits_per_sec();
    if (bw <= 0.0 || !min_rtt_.has_value()) return 0.0;
    const double bdp = bw * min_rtt_->secs() / (8.0 * mss_bytes_);
    return std::max(kBbrCwndGain * bdp, kBbrMinCwnd);
  }

  double mss_bytes_;
  double cwnd_;
  double ssthresh_;
  std::vector<BwSample> bw_window_;
  std::optional<Duration> min_rtt_{};
};

}  // namespace

std::unique_ptr<CongestionOps> make_congestion_ops(std::string_view name,
                                                   const TcpConfig& cfg) {
  if (name == "reno") return std::make_unique<RenoOps>(cfg);
  if (name == "reno-rfc") return std::make_unique<RenoRfcOps>(cfg);
  if (name == "cubic") return std::make_unique<CubicOps>(cfg);
  if (name == "bbr") return std::make_unique<BbrOps>(cfg);
  throw std::invalid_argument{"unknown congestion control '" +
                              std::string{name} +
                              "' (expected reno, reno-rfc, cubic, or bbr)"};
}

const std::vector<std::string_view>& congestion_ops_names() {
  static const std::vector<std::string_view> names = {"reno", "reno-rfc",
                                                      "cubic", "bbr"};
  return names;
}

}  // namespace pathload::tcp
