#include "tcp/reno.hpp"

#include <algorithm>

#include "tcp/cong.hpp"

namespace pathload::tcp {

// --- TcpReceiver -----------------------------------------------------------

TcpReceiver::TcpReceiver(sim::Simulator& sim, Duration reverse_delay)
    : sim_{sim}, reverse_delay_{reverse_delay} {}

void TcpReceiver::handle(const sim::Packet& data) {
  mss_bytes_ = data.size_bytes;  // learn the segment wire size for stats
  bytes_received_ += data.size();
  const std::uint64_t seq = data.tcp_seq;
  if (seq == rcv_next_) {
    ++rcv_next_;
    // Drain any contiguous out-of-order segments.
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_next_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_next_;
    }
  } else if (seq > rcv_next_) {
    out_of_order_.insert(seq);
  }
  // Immediate ACK (no delayed ACKs): dup ACKs drive fast retransmit.
  if (sender_ != nullptr) {
    sim::Packet ack;
    ack.id = sim_.next_packet_id();
    ack.flow = data.flow;
    ack.kind = sim::PacketKind::kTcpAck;
    ack.size_bytes = 40;
    ack.tcp_seq = rcv_next_;
    sim_.schedule_in(reverse_delay_, [w = sender_alive_, s = sender_, ack] {
      if (!w.expired()) s->handle(ack);
    });
  }
}

// --- TcpSender --------------------------------------------------------------

TcpSender::TcpSender(sim::Simulator& sim, sim::Path& path, TcpConfig cfg,
                     sim::Segment segment)
    : sim_{sim},
      path_{path},
      cfg_{cfg},
      segment_{path.normalized(segment)},
      entry_{&path.segment_entry(segment_)},
      exit_hop_{path.exit_hop_value(segment_)},
      flow_{sim.next_flow_id()},
      ops_{make_congestion_ops(cfg.cc, cfg)},
      sampler_{cfg.mss_bytes},
      rto_{cfg.initial_rto} {}

TcpSender::~TcpSender() = default;

double TcpSender::cwnd_segments() const { return ops_->cwnd(); }
double TcpSender::ssthresh_segments() const { return ops_->ssthresh(); }

void TcpSender::start() {
  if (running_) return;
  running_ = true;
  started_ = sim_.now();
  try_send();
}

double TcpSender::effective_window() const {
  double w = ops_->cwnd();
  if (cfg_.advertised_window.has_value()) w = std::min(w, *cfg_.advertised_window);
  return std::max(w, 1.0);
}

void TcpSender::try_send() {
  if (!running_) return;
  while (static_cast<double>(next_seq_ - highest_acked_) < effective_window()) {
    transmit(next_seq_);
    ++next_seq_;
  }
}

void TcpSender::transmit(std::uint64_t seq) {
  sim::Packet p;
  p.id = sim_.next_packet_id();
  p.flow = flow_;
  p.kind = sim::PacketKind::kTcpData;
  p.size_bytes = cfg_.mss_bytes + cfg_.header_bytes;
  p.transit = true;
  p.exit_hop = exit_hop_;
  p.tcp_seq = seq;
  p.entered = sim_.now();
  entry_->handle(p);
  ++segments_sent_;
  // A stopped sender still retransmitting its tail has no data waiting:
  // those windows are application-limited, not network-limited.
  sampler_.on_sent(seq, sim_.now(), !running_);
  // Karn's rule: time one un-retransmitted segment at a time. A segment is
  // "clean" here when it is the first transmission of a new sequence.
  if (!timed_seq_.has_value() && seq == next_seq_) {
    timed_seq_ = seq;
    timed_sent_ = sim_.now();
  }
  if (!timer_armed_) arm_rto();
}

void TcpSender::handle(const sim::Packet& ack) {
  const std::uint64_t cum = ack.tcp_seq;
  if (cum > highest_acked_) {
    on_new_ack(cum);
  } else if (cum == highest_acked_ && next_seq_ > highest_acked_) {
    on_dup_ack();
  }
  try_send();
}

void TcpSender::on_new_ack(std::uint64_t cum_ack) {
  const auto newly_acked = static_cast<double>(cum_ack - highest_acked_);
  // FlightSize (RFC 5681) at ACK arrival, before any bookkeeping: what the
  // conformant policies halve on loss and this ACK's context carries.
  const auto flight = static_cast<double>(next_seq_ - highest_acked_);
  // RTT sample (Karn: only if the timed segment was covered and never
  // retransmitted — retransmission clears timed_seq_).
  if (timed_seq_.has_value() && cum_ack > *timed_seq_) {
    take_rtt_sample(sim_.now() - timed_sent_);
    timed_seq_.reset();
  }
  highest_acked_ = cum_ack;
  dup_acks_ = 0;
  const std::optional<RateSample> sample = sampler_.on_ack(cum_ack, sim_.now());
  const CongestionOps::Context ctx{flight, srtt_, sim_.now(),
                                   sample.has_value() ? &*sample : nullptr};

  if (in_recovery_) {
    if (cum_ack >= recover_point_) {
      // Full recovery: the policy deflates (Reno: cwnd = ssthresh).
      in_recovery_ = false;
      ops_->on_recovery_exit(ctx);
    } else {
      // Partial ACK (NewReno): the next hole is also lost; retransmit it
      // immediately and stay in recovery.
      transmit(highest_acked_);
      ops_->on_partial_ack(newly_acked, ctx);
      arm_rto();
      return;
    }
  } else {
    ops_->on_ack(newly_acked, ctx);
  }
  arm_rto();
}

void TcpSender::on_dup_ack() {
  if (in_recovery_) {
    const CongestionOps::Context ctx{
        static_cast<double>(next_seq_ - highest_acked_), srtt_, sim_.now(),
        nullptr};
    ops_->on_dup_ack_inflate(ctx);
    return;
  }
  if (++dup_acks_ == cfg_.dupack_threshold) {
    enter_fast_recovery();
  }
}

void TcpSender::enter_fast_recovery() {
  const CongestionOps::Context ctx{
      static_cast<double>(next_seq_ - highest_acked_), srtt_, sim_.now(),
      nullptr};
  // The policy sets ssthresh and the inflated recovery window together.
  // (The historical sender set ssthresh before the fast retransmit and
  // cwnd after; neither value is read in between, so the combined hook is
  // trace-identical.)
  ops_->on_enter_recovery(cfg_.dupack_threshold, ctx);
  recover_point_ = next_seq_;
  in_recovery_ = true;
  ++fast_retransmits_;
  timed_seq_.reset();            // Karn: retransmitted segment is not timed
  transmit(highest_acked_);      // fast retransmit of the missing segment
  arm_rto();
}

void TcpSender::on_rto(std::uint64_t generation) {
  if (generation != rto_generation_) return;  // stale timer
  if (next_seq_ == highest_acked_) {
    // Nothing outstanding: let the timer lapse; the next transmission
    // re-arms it.
    timer_armed_ = false;
    return;
  }
  ++timeouts_;
  const CongestionOps::Context ctx{
      static_cast<double>(next_seq_ - highest_acked_), srtt_, sim_.now(),
      nullptr};
  ops_->on_rto(ctx);
  dup_acks_ = 0;
  in_recovery_ = false;
  timed_seq_.reset();
  next_seq_ = highest_acked_;  // go-back-N from the hole
  rto_ = std::min(rto_ * 2.0, cfg_.max_rto);  // exponential backoff
  arm_rto();
  try_send();
}

void TcpSender::arm_rto() {
  const std::uint64_t gen = ++rto_generation_;
  timer_armed_ = true;
  sim_.schedule_in(rto_, [w = std::weak_ptr<const bool>(alive_), this, gen] {
    if (!w.expired()) on_rto(gen);
  });
}

void TcpSender::take_rtt_sample(Duration sample) {
  rtt_samples_.push_back(sample.secs());
  if (srtt_ == Duration::zero()) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
  } else {
    const Duration err = Duration::seconds(std::abs((sample - srtt_).secs()));
    rttvar_ = rttvar_ * 0.75 + err * 0.25;
    srtt_ = srtt_ * 0.875 + sample * 0.125;
  }
  rto_ = std::clamp(srtt_ + rttvar_ * 4.0, cfg_.min_rto, cfg_.max_rto);
}

DataSize TcpSender::bytes_acked() const {
  return DataSize::bytes(static_cast<std::int64_t>(highest_acked_) * cfg_.mss_bytes);
}

Rate TcpSender::average_throughput() const {
  const Duration elapsed = sim_.now() - started_;
  if (elapsed <= Duration::zero()) return Rate::zero();
  return rate_of(bytes_acked(), elapsed);
}

// --- TcpConnection -----------------------------------------------------------

TcpConnection::TcpConnection(sim::Simulator& sim, sim::Path& path, TcpConfig cfg,
                             Duration reverse_delay, sim::Segment segment)
    : path_{path},
      receiver_{sim, reverse_delay},
      sender_{sim, path, cfg, segment} {
  receiver_.connect(&sender_, sender_.alive_token());
  path_.segment_exit(sender_.segment()).register_flow(sender_.flow(), &receiver_);
}

TcpConnection::~TcpConnection() {
  path_.segment_exit(sender_.segment()).unregister_flow(sender_.flow());
}

}  // namespace pathload::tcp
