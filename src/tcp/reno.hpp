#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "tcp/rate_sampler.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace pathload::tcp {

class CongestionOps;

/// TCP parameters. Sequence numbers are counted in MSS-sized segments
/// (the simulator never fragments), so cwnd is in segments too.
struct TcpConfig {
  std::int32_t mss_bytes{1460};     ///< payload per segment
  std::int32_t header_bytes{40};    ///< IP+TCP header on the wire
  double initial_cwnd{2.0};
  double initial_ssthresh{64.0};
  /// Receiver advertised window in segments. A *BTC* connection (Section
  /// VII) leaves this unset: "arbitrarily large advertised window". Cross
  /// TCP flows set it to model application/receiver-limited transfers.
  std::optional<double> advertised_window{};
  int dupack_threshold{3};
  Duration min_rto{Duration::milliseconds(200)};
  Duration max_rto{Duration::seconds(60)};
  Duration initial_rto{Duration::seconds(1)};
  /// Congestion-control policy (see tcp/cong.hpp): "reno" (the bit-frozen
  /// historical policy), "reno-rfc" (RFC 5681-conformant ssthresh and
  /// slow-start boundary), "cubic", or "bbr".
  std::string cc{"reno"};
};

/// Receiving endpoint: cumulative ACKs with out-of-order buffering. ACKs
/// return to the sender over an uncongested fixed-delay reverse path,
/// matching the paper's experiments where congestion was on the forward
/// direction. Safe to tear down mid-flight: reverse-path deliveries hold a
/// liveness token and expire if the sender is gone.
class TcpReceiver final : public sim::PacketHandler {
 public:
  TcpReceiver(sim::Simulator& sim, Duration reverse_delay);

  /// The sender ACKs are delivered to (set once during connection wiring).
  /// The liveness token guards the reverse-path delivery events: a
  /// connection may be torn down while ACKs are still "in flight" in the
  /// simulator, and those events must then expire silently.
  void connect(sim::PacketHandler* sender, std::weak_ptr<const bool> sender_alive) {
    sender_ = sender;
    sender_alive_ = std::move(sender_alive);
  }

  void handle(const sim::Packet& data) override;

  /// Next expected segment = total in-order segments received.
  std::uint64_t cumulative_ack() const { return rcv_next_; }
  DataSize bytes_received() const { return bytes_received_; }

 private:
  sim::Simulator& sim_;
  Duration reverse_delay_;
  sim::PacketHandler* sender_{nullptr};
  std::weak_ptr<const bool> sender_alive_;
  std::uint64_t rcv_next_{0};
  std::set<std::uint64_t> out_of_order_;
  DataSize bytes_received_{};
  std::int32_t mss_bytes_{1460};
};

/// Sending endpoint implementing the TCP loss-recovery *mechanism*: fast
/// retransmit / fast recovery (with NewReno-style partial-ACK
/// retransmission so multi-drop windows recover without RTO),
/// Jacobson/Karels RTO with Karn's rule and exponential backoff. The
/// cwnd/ssthresh *policy* is pluggable (tcp/cong.hpp, selected by
/// TcpConfig::cc; the default "reno" reproduces the historical monolithic
/// sender bit-exactly), and every transmission/ACK feeds a RateSampler
/// whose delivery-rate samples drive the model-based policies.
///
/// The sender attaches to a path *segment* [first, last]: data enters just
/// before link `first` and leaves the path right after link `last`. The
/// default segment is the whole path, which routes bit-identically to the
/// pre-segment sender.
class TcpSender final : public sim::PacketHandler {
 public:
  TcpSender(sim::Simulator& sim, sim::Path& path, TcpConfig cfg,
            sim::Segment segment = {});
  ~TcpSender();

  /// Begin the (greedy) transfer: the application always has data.
  void start();
  /// Stop offering new data (in-flight data still completes).
  void stop() { running_ = false; }

  std::uint32_t flow() const { return flow_; }
  const sim::Segment& segment() const { return segment_; }

  // --- observability ---------------------------------------------------
  double cwnd_segments() const;
  double ssthresh_segments() const;
  /// The connection's per-ACK delivery-rate sampler (recording off by
  /// default; bulk transfers switch it on to export the sample series).
  RateSampler& rate_sampler() { return sampler_; }
  const RateSampler& rate_sampler() const { return sampler_; }
  /// The active congestion-control policy (TcpConfig::cc).
  const CongestionOps& congestion_ops() const { return *ops_; }
  std::uint64_t segments_acked() const { return highest_acked_; }
  DataSize bytes_acked() const;
  std::uint64_t fast_retransmits() const { return fast_retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t segments_sent() const { return segments_sent_; }
  /// Smoothed RTT estimate (zero until the first sample).
  Duration srtt() const { return srtt_; }
  /// Every RTT sample taken (for jitter analysis in tests/benches).
  const std::vector<double>& rtt_samples_secs() const { return rtt_samples_; }

  /// Receives ACK packets.
  void handle(const sim::Packet& ack) override;

  /// Average goodput of the whole connection so far.
  Rate average_throughput() const;

  /// Liveness token for events that reference this sender (RTO timers,
  /// reverse-path ACK deliveries). Expires when the sender is destroyed.
  std::weak_ptr<const bool> alive_token() const { return alive_; }

 private:
  void try_send();
  void transmit(std::uint64_t seq);
  void on_new_ack(std::uint64_t cum_ack);
  void on_dup_ack();
  void enter_fast_recovery();
  void on_rto(std::uint64_t generation);
  void arm_rto();
  void take_rtt_sample(Duration sample);
  double effective_window() const;

  sim::Simulator& sim_;
  sim::Path& path_;
  TcpConfig cfg_;
  sim::Segment segment_;                 ///< normalized hop range [first, last]
  sim::PacketHandler* entry_{nullptr};   ///< head of link segment_.first
  std::uint32_t exit_hop_;               ///< Packet::exit_hop for this segment
  std::uint32_t flow_;
  bool running_{false};
  TimePoint started_{};

  // Transport state (segments). cwnd/ssthresh live in the policy object.
  std::uint64_t next_seq_{0};       ///< next *new* segment to send
  std::uint64_t highest_acked_{0};  ///< cumulative ACK
  std::unique_ptr<CongestionOps> ops_;
  RateSampler sampler_;
  int dup_acks_{0};
  bool in_recovery_{false};
  std::uint64_t recover_point_{0};

  // RTO machinery.
  Duration srtt_{Duration::zero()};
  Duration rttvar_{Duration::zero()};
  Duration rto_;
  std::uint64_t rto_generation_{0};
  bool timer_armed_{false};
  std::optional<std::uint64_t> timed_seq_{};  ///< Karn: one clean sample at a time
  TimePoint timed_sent_{};

  // Counters.
  std::uint64_t segments_sent_{0};
  std::uint64_t fast_retransmits_{0};
  std::uint64_t timeouts_{0};
  std::vector<double> rtt_samples_;

  // Destroyed with the sender; scheduled events hold weak copies.
  std::shared_ptr<const bool> alive_{std::make_shared<const bool>(true)};
};

/// A fully wired TCP connection over a simulated path: sender at the
/// segment entry, receiver at the segment exit (registered on that demux),
/// ACKs over a fixed-delay reverse path. The default segment is the whole
/// path — sender at the ingress, receiver on the egress demux, exactly the
/// pre-segment wiring.
class TcpConnection {
 public:
  TcpConnection(sim::Simulator& sim, sim::Path& path, TcpConfig cfg,
                Duration reverse_delay, sim::Segment segment = {});
  ~TcpConnection();

  TcpSender& sender() { return sender_; }
  TcpReceiver& receiver() { return receiver_; }
  std::uint32_t flow() const { return sender_.flow(); }
  const sim::Segment& segment() const { return sender_.segment(); }

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

 private:
  sim::Path& path_;
  TcpReceiver receiver_;
  TcpSender sender_;
};

}  // namespace pathload::tcp
