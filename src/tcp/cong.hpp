// Pluggable congestion control for TcpSender (the tcp_cong.c seam).
//
// TcpSender owns the mechanism — sequence/ACK bookkeeping, fast-recovery
// entry/exit detection, retransmission, RTO — and delegates every *policy*
// decision (how cwnd and ssthresh move) to a CongestionOps object. Four
// policies ship:
//
//  * reno     — the historical policy, extracted verbatim from the
//               pre-seam TcpSender: identical floating-point expressions
//               in identical order, so `cc=reno` reproduces pre-refactor
//               traces bit-exactly (the golden-anchor contract).
//  * reno-rfc — Reno with the two RFC 5681 conformance fixes the
//               historical policy lacks: ssthresh halves *FlightSize*
//               (§3.1: "ssthresh = max(FlightSize/2, 2*SMSS)" — halving
//               cwnd instead overshoots whenever cwnd outgrew the
//               advertised window), and a slow-start stretch ACK stops
//               growing exponentially at the ssthresh boundary instead of
//               jumping past it (the remainder grows linearly, as if the
//               sender had crossed into congestion avoidance mid-ACK).
//  * cubic    — CUBIC window growth (RFC 8312 shape): beta = 0.7
//               multiplicative decrease and the C*(t-K)^3 + W_max concave/
//               convex profile in congestion avoidance.
//  * bbr      — a BBR-style model-based policy: it maintains a windowed
//               maximum of the RateSampler's delivery-rate samples
//               (app-limited samples never raise it) and a running minimum
//               RTT, and pins cwnd to 2x the estimated
//               bandwidth-delay product instead of reacting to loss
//               multiplicatively.
//
// The sampler/ops handshake: TcpSender passes the latest RateSample (if
// the ACK produced one) in Context::sample. Only bbr reads it today.

#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::tcp {

struct RateSample;
struct TcpConfig;

/// The cwnd/ssthresh policy of one TCP connection. Implementations own
/// both variables; the sender reads them through cwnd()/ssthresh() and
/// reports events through the on_* hooks. All window arithmetic is in
/// MSS-sized segments, matching TcpSender.
class CongestionOps {
 public:
  /// Event context the mechanism layer can supply to any hook.
  struct Context {
    /// Segments in flight when the event fired (next_seq - highest_acked,
    /// before the event's own bookkeeping) — RFC 5681's FlightSize.
    double flight_size{0.0};
    Duration srtt{Duration::zero()};  ///< smoothed RTT; zero before a sample
    TimePoint now{};
    /// Delivery-rate sample this ACK produced, or nullptr.
    const RateSample* sample{nullptr};
  };

  virtual ~CongestionOps() = default;

  virtual std::string_view name() const = 0;
  virtual double cwnd() const = 0;
  virtual double ssthresh() const = 0;

  /// A new cumulative ACK outside recovery covered `newly_acked` segments.
  virtual void on_ack(double newly_acked, const Context& ctx) = 0;
  /// The ACK covered the recovery point: fast recovery is over.
  virtual void on_recovery_exit(const Context& ctx) = 0;
  /// NewReno partial ACK: still in recovery, `newly_acked` covered.
  virtual void on_partial_ack(double newly_acked, const Context& ctx) = 0;
  /// A duplicate ACK arrived while already in recovery.
  virtual void on_dup_ack_inflate(const Context& ctx) = 0;
  /// The dup-ACK threshold tripped: entering fast recovery.
  virtual void on_enter_recovery(int dupack_threshold, const Context& ctx) = 0;
  /// Retransmission timeout fired.
  virtual void on_rto(const Context& ctx) = 0;
};

/// Build the policy `name` ("reno", "reno-rfc", "cubic", "bbr") for a
/// connection with cfg's initial window parameters. Throws
/// std::invalid_argument on an unknown name.
std::unique_ptr<CongestionOps> make_congestion_ops(std::string_view name,
                                                   const TcpConfig& cfg);

/// The policy names make_congestion_ops accepts, in catalogue order.
const std::vector<std::string_view>& congestion_ops_names();

}  // namespace pathload::tcp
