#include "tcp/workload.hpp"

#include <algorithm>

namespace pathload::tcp {

SegmentTcpFlow::SegmentTcpFlow(sim::Simulator& sim, sim::Path& path,
                               SegmentFlowConfig cfg)
    : sim_{sim},
      path_{path},
      cfg_{std::move(cfg)},
      timer_{sim.make_timer([this] { on_timer(); })} {
  // Fail on nonsense segments at construction, not at first packet.
  cfg_.segment = path_.normalized(cfg_.segment);
}

void SegmentTcpFlow::launch() {
  epoch_ = sim_.now();
  phase_ = Phase::kWaitingOn;
  timer_.schedule_at(epoch_ + cfg_.start);
}

std::optional<TimePoint> SegmentTcpFlow::stop_at() const {
  if (!cfg_.stop.has_value()) return std::nullopt;
  return epoch_ + *cfg_.stop;
}

void SegmentTcpFlow::on_timer() {
  const std::optional<TimePoint> stop = stop_at();
  if (phase_ == Phase::kWaitingOn) {
    begin_connection();
    phase_ = Phase::kOn;
    // The ON period ends at the cycle boundary or the flow's stop time,
    // whichever comes first; a flow with neither runs to the end of the
    // simulation.
    std::optional<TimePoint> end;
    if (cfg_.cycles()) end = sim_.now() + *cfg_.on_period;
    if (stop.has_value() && (!end.has_value() || *stop < *end)) end = stop;
    if (end.has_value()) timer_.schedule_at(*end);
    return;
  }
  if (phase_ == Phase::kOn) {
    end_connection();
    const TimePoint next_on = sim_.now() + (cfg_.cycles() ? *cfg_.off_period
                                                          : Duration::zero());
    if (!cfg_.cycles() || (stop.has_value() && next_on >= *stop)) {
      phase_ = Phase::kIdle;  // done for good
      return;
    }
    phase_ = Phase::kWaitingOn;
    timer_.schedule_at(next_on);
  }
}

void SegmentTcpFlow::begin_connection() {
  conn_ = std::make_unique<TcpConnection>(sim_, path_, cfg_.tcp,
                                          cfg_.reverse_delay, cfg_.segment);
  conn_->sender().start();
  ++connections_;
}

void SegmentTcpFlow::end_connection() {
  if (conn_ == nullptr) return;
  completed_bytes_ += conn_->sender().bytes_acked();
  completed_timeouts_ += conn_->sender().timeouts();
  conn_.reset();  // unregisters the demux entry; in-flight ACKs expire
}

DataSize SegmentTcpFlow::bytes_acked() const {
  DataSize total = completed_bytes_;
  if (conn_ != nullptr) total += conn_->sender().bytes_acked();
  return total;
}

std::uint64_t SegmentTcpFlow::timeouts() const {
  std::uint64_t total = completed_timeouts_;
  if (conn_ != nullptr) total += conn_->sender().timeouts();
  return total;
}

}  // namespace pathload::tcp
