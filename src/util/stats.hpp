#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace pathload {

/// Streaming mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Coefficient of variation: stddev / mean.
  double cv() const;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Median of a sample (copies and partially sorts; empty input -> 0).
double median(std::span<const double> xs);

/// p-quantile (p in [0,1]) by linear interpolation of the sorted sample.
double percentile(std::span<const double> xs, double p);

/// Empirical CDF helper: percentiles {5, 15, ..., 95} as plotted in the
/// paper's Figures 11-14.
struct PercentileRow {
  double pct;    ///< percentile level in percent (e.g. 75)
  double value;  ///< sample value at that level
};
std::vector<PercentileRow> deciles_5_to_95(std::span<const double> xs);

/// One interval measurement for the weighted average of Eq. (11): a
/// measurement that lasted `duration` and reported midpoint `value`.
struct WeightedSample {
  double value;
  Duration duration;
};

/// Duration-weighted average of interval measurements (paper Eq. (11)):
/// sum(t_i * v_i) / sum(t_i). Used to compare ~10-30 s pathload runs
/// against 5-minute MRTG averages.
double duration_weighted_average(std::span<const WeightedSample> samples);

/// Ordinary least-squares line fit y = slope * x + intercept.
/// Fewer than two points (or zero x-variance) yields {0, mean(y)}.
struct LinearFit {
  double slope{0.0};
  double intercept{0.0};
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace pathload
