#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace pathload {

std::string Duration::str() const {
  char buf[64];
  const double abs_ns = std::abs(static_cast<double>(ns_));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", secs());
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", millis());
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", micros());
  } else {
    std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(ns_));
  }
  return buf;
}

std::string DataSize::str() const {
  char buf[64];
  if (bytes_ >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fMB", static_cast<double>(bytes_) * 1e-6);
  } else if (bytes_ >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.2fKB", static_cast<double>(bytes_) * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%ldB", static_cast<long>(bytes_));
  }
  return buf;
}

std::string Rate::str() const {
  char buf[64];
  if (bps_ >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fMb/s", bps_ * 1e-6);
  } else if (bps_ >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fKb/s", bps_ * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fb/s", bps_);
  }
  return buf;
}

}  // namespace pathload
