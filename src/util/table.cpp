#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace pathload {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table row width does not match headers"};
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out += std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
    return out;
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv_field(const std::string& cell) {
  // RFC 4180: only fields containing a comma, a double quote, or a line
  // break need quoting (embedded quotes doubled); everything else passes
  // through untouched, so numeric tables render exactly as before.
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string Table::to_csv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_field(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
    return out;
  };
  std::string out = render(headers_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace pathload
