#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace pathload {

/// A signed span of time with nanosecond resolution.
///
/// Both the discrete-event simulator and the live (POSIX) backend express
/// time in this type, so algorithm code in `core/` is backend-agnostic.
/// Nanosecond resolution is sufficient: the smallest interval the paper
/// cares about is the probe period T >= 100 us.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
  static constexpr Duration microseconds(double us) {
    return Duration{static_cast<std::int64_t>(us * 1e3)};
  }
  static constexpr Duration milliseconds(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1e6)};
  }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  /// A value larger than any duration used in practice (~292 years).
  static constexpr Duration max() { return Duration{INT64_MAX}; }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) * 1e-3; }
  constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double secs() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) / k)};
  }
  /// Ratio of two durations (e.g. how many periods fit in a window).
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "18.0ms".
  std::string str() const;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

constexpr Duration operator*(double k, Duration d) { return d * k; }

/// An instant on a backend's clock (simulation clock or CLOCK_MONOTONIC),
/// measured in nanoseconds from an arbitrary origin.
///
/// Different hosts may have different origins (non-synchronized clocks);
/// SLoPS only ever uses *differences* of one-way delays, so a constant
/// per-host offset cancels out (Section IV, "Clock and Timing Issues").
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_nanos(std::int64_t ns) { return TimePoint{ns}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double secs() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.nanos()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.nanos()}; }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::nanoseconds(ns_ - o.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.nanos(); return *this; }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

}  // namespace pathload
