#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pathload {

/// A non-allocating, move-only callable holder for simulator events.
///
/// The discrete-event engine schedules millions of events per simulated
/// experiment; `std::function` would heap-allocate for captures larger than
/// its SBO. This holder stores the callable inline (up to `Capacity` bytes)
/// and refuses larger captures at compile time, keeping the event loop
/// allocation-free on the hot path.
template <std::size_t Capacity = 56>
class SmallFunction {
 public:
  SmallFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFunction> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "event capture too large for SmallFunction; shrink the lambda");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callables must be nothrow-movable");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
    if constexpr (!std::is_trivially_copyable_v<Fn>) {
      move_ = [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*std::launder(reinterpret_cast<Fn*>(src))));
        std::launder(reinterpret_cast<Fn*>(src))->~Fn();
      };
      destroy_ = [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); };
    }
    // Trivially copyable captures (the common case for simulator events:
    // a couple of pointers, or a Packet by value) keep move_ and destroy_
    // null: relocation is a plain memcpy and destruction is a no-op, saving
    // two indirect calls per scheduled event.
  }

  SmallFunction(SmallFunction&& o) noexcept { move_from(std::move(o)); }

  SmallFunction& operator=(SmallFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(std::move(o));
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void move_from(SmallFunction&& o) noexcept {
    if (o.invoke_ != nullptr) {
      if (o.move_ != nullptr) {
        o.move_(storage_, o.storage_);
      } else {
        std::memcpy(storage_, o.storage_, Capacity);
      }
      invoke_ = o.invoke_;
      move_ = o.move_;
      destroy_ = o.destroy_;
      o.invoke_ = nullptr;
      o.move_ = nullptr;
      o.destroy_ = nullptr;
    }
  }

  void reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    move_ = nullptr;
    destroy_ = nullptr;
  }

  // Pointers first: the dispatch pointer shares a cache line with the
  // start of the capture (and, inside the simulator's slot slab, with the
  // slot's scheduling fields), so invoking touches one line fewer.
  void (*invoke_)(void*) = nullptr;
  void (*move_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

}  // namespace pathload
