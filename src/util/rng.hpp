#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace pathload {

/// Seeded pseudo-random source used everywhere randomness is needed.
///
/// Every experiment takes an explicit seed so simulation results are
/// reproducible run-to-run (the paper's NS simulations are similarly
/// seed-controlled). One Rng instance must not be shared across logically
/// independent streams of randomness if independence matters; derive child
/// generators with `fork()`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform in [0, 1).
  ///
  /// Bit-identical to `std::uniform_real_distribution<double>{0, 1}` over
  /// mt19937_64 on libstdc++ (its generate_canonical draws one 64-bit word,
  /// divides by 2^64 -- exact power-of-two scaling, reproduced by the
  /// multiply below -- and clamps a result that rounds to 1.0 with the
  /// same nextafter, consuming no extra word; see bits/random.tcc). Skips
  /// the distribution object's long-double detour -- worth ~10 ns per draw
  /// on the simulator's per-packet sampling path.
  double uniform() {
    const double u = static_cast<double>(engine_()) * 0x1p-64;
    return u < 1.0 ? u : std::nextafter(1.0, 0.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>{0, n - 1}(engine_);
  }

  /// Exponential with the given mean (Poisson process interarrivals).
  double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Pareto with shape `alpha` and the given mean (requires alpha > 1).
  ///
  /// The paper's cross traffic uses Pareto interarrivals with alpha = 1.9:
  /// finite mean but infinite variance, i.e. heavy burstiness. Scale is
  /// x_m = mean * (alpha - 1) / alpha so that E[X] = mean.
  double pareto(double alpha, double mean);

  /// The inverse-CDF transform behind `pareto`, exposed so hot paths that
  /// hoist the constants (x_m, 1/alpha) out of the loop share one
  /// definition -- the drawn sequence must stay bit-identical between the
  /// two call styles.
  static double pareto_from_uniform(double u01, double x_m, double inv_alpha) {
    const double u = 1.0 - u01;  // in (0, 1]
    return x_m / std::pow(u, inv_alpha);
  }

  /// Pick an index from a discrete distribution given by weights.
  std::size_t pick_weighted(std::span<const double> weights);

  /// Derive an independent child generator (stable given this Rng's state).
  Rng fork() { return Rng{engine_()}; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pathload
