#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace pathload {

/// Seeded pseudo-random source used everywhere randomness is needed.
///
/// Every experiment takes an explicit seed so simulation results are
/// reproducible run-to-run (the paper's NS simulations are similarly
/// seed-controlled). One Rng instance must not be shared across logically
/// independent streams of randomness if independence matters; derive child
/// generators with `fork()`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>{0, n - 1}(engine_);
  }

  /// Exponential with the given mean (Poisson process interarrivals).
  double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Pareto with shape `alpha` and the given mean (requires alpha > 1).
  ///
  /// The paper's cross traffic uses Pareto interarrivals with alpha = 1.9:
  /// finite mean but infinite variance, i.e. heavy burstiness. Scale is
  /// x_m = mean * (alpha - 1) / alpha so that E[X] = mean.
  double pareto(double alpha, double mean);

  /// Pick an index from a discrete distribution given by weights.
  std::size_t pick_weighted(std::span<const double> weights);

  /// Derive an independent child generator (stable given this Rng's state).
  Rng fork() { return Rng{engine_()}; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace pathload
