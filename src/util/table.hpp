#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pathload {

/// Column-aligned text table for bench/example output.
///
/// Each bench binary prints the rows/series of the paper figure it
/// regenerates through one of these, so the output is both human-readable
/// and trivially machine-parseable (`--csv` style output via to_csv()).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// RFC 4180 field encoding: cells containing commas, quotes, or line
  /// breaks come back quoted (embedded quotes doubled); plain cells pass
  /// through unchanged. to_csv() applies this to every cell, so free-text
  /// columns (outcome notes, descriptions) cannot corrupt the row format.
  static std::string csv_field(const std::string& cell);

  /// Render with aligned columns.
  std::string str() const;
  /// Render as CSV.
  std::string to_csv() const;

  /// Print the aligned rendering to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pathload
