#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace pathload {

/// An amount of data in bytes.
class DataSize {
 public:
  constexpr DataSize() = default;
  static constexpr DataSize bytes(std::int64_t b) { return DataSize{b}; }
  static constexpr DataSize kilobytes(double kb) {
    return DataSize{static_cast<std::int64_t>(kb * 1000.0)};
  }

  constexpr std::int64_t byte_count() const { return bytes_; }
  constexpr double bits() const { return static_cast<double>(bytes_) * 8.0; }

  constexpr DataSize operator+(DataSize o) const { return DataSize{bytes_ + o.bytes_}; }
  constexpr DataSize operator-(DataSize o) const { return DataSize{bytes_ - o.bytes_}; }
  constexpr DataSize& operator+=(DataSize o) { bytes_ += o.bytes_; return *this; }
  constexpr DataSize& operator-=(DataSize o) { bytes_ -= o.bytes_; return *this; }
  constexpr auto operator<=>(const DataSize&) const = default;

  std::string str() const;

 private:
  explicit constexpr DataSize(std::int64_t b) : bytes_{b} {}
  std::int64_t bytes_{0};
};

/// A data rate in bits per second.
///
/// Throughout the library rates are *link-layer payload* rates, matching the
/// paper's convention (capacities like "10 Mb/s" refer to what the queue
/// drains at; the L >= 200 B constraint in Section IV exists precisely so
/// layer-2 header overhead is negligible).
class Rate {
 public:
  constexpr Rate() = default;
  static constexpr Rate bps(double v) { return Rate{v}; }
  static constexpr Rate kbps(double v) { return Rate{v * 1e3}; }
  static constexpr Rate mbps(double v) { return Rate{v * 1e6}; }
  static constexpr Rate zero() { return Rate{0.0}; }

  constexpr double bits_per_sec() const { return bps_; }
  constexpr double mbits_per_sec() const { return bps_ * 1e-6; }

  /// Time to transmit `size` at this rate (store-and-forward serialization).
  constexpr Duration transmission_time(DataSize size) const {
    return Duration::seconds(size.bits() / bps_);
  }
  /// Data carried in `d` at this rate.
  constexpr DataSize bytes_in(Duration d) const {
    return DataSize::bytes(static_cast<std::int64_t>(bps_ * d.secs() / 8.0));
  }

  constexpr Rate operator+(Rate o) const { return Rate{bps_ + o.bps_}; }
  constexpr Rate operator-(Rate o) const { return Rate{bps_ - o.bps_}; }
  constexpr Rate operator*(double k) const { return Rate{bps_ * k}; }
  constexpr Rate operator/(double k) const { return Rate{bps_ / k}; }
  constexpr double operator/(Rate o) const { return bps_ / o.bps_; }
  constexpr auto operator<=>(const Rate&) const = default;

  std::string str() const;

 private:
  explicit constexpr Rate(double v) : bps_{v} {}
  double bps_{0.0};
};

constexpr Rate operator*(double k, Rate r) { return r * k; }

/// Average rate of `size` delivered over `elapsed`.
constexpr Rate rate_of(DataSize size, Duration elapsed) {
  return Rate::bps(size.bits() / elapsed.secs());
}

}  // namespace pathload
