#include "util/alias_sampler.hpp"

#include <cmath>
#include <cstring>
#include <numeric>

namespace pathload {

namespace {

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

double double_of(std::uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

/// Exactly the floating-point subtract chain of Rng::pick_weighted: the
/// returned index is monotone nondecreasing in u, which is what makes the
/// split points recoverable by bisection.
std::size_t linear_scan(std::span<const double> weights, double total, double u) {
  double x = u * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace

AliasSampler::AliasSampler(std::span<const double> weights) : n_{weights.size()} {
  if (weights.empty()) {
    throw std::invalid_argument{"AliasSampler: empty weights"};
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument{"AliasSampler: weights must be finite and >= 0"};
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument{"AliasSampler: total weight must be positive"};
  }
  if (!build_cdf_aligned(weights)) build_vose(weights);
  scale_ = static_cast<double>(cells_.size());
}

bool AliasSampler::build_cdf_aligned(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);

  std::size_t m = 1;
  while (m < n_) m <<= 1;  // power of two: u * m floors exactly into cells

  for (; m <= kMaxCells; m <<= 1) {
    cells_.clear();
    cells_.reserve(m);
    bool ok = true;
    for (std::size_t c = 0; c < m && ok; ++c) {
      const double u_lo = static_cast<double>(c) / static_cast<double>(m);
      // Largest representable u strictly inside the cell.
      const double u_hi = std::nextafter(
          static_cast<double>(c + 1) / static_cast<double>(m), 0.0);
      const auto lo_bin =
          static_cast<std::uint32_t>(linear_scan(weights, total, u_lo));
      const auto hi_bin =
          static_cast<std::uint32_t>(linear_scan(weights, total, u_hi));
      if (lo_bin == hi_bin) {
        cells_.push_back(Cell{2.0, lo_bin, lo_bin});
        continue;
      }
      // Bisect (over the bit patterns: nonnegative doubles order like their
      // representations) for the first u where the scan leaves lo_bin.
      std::uint64_t lo_b = bits_of(u_lo);
      std::uint64_t hi_b = bits_of(u_hi);
      while (hi_b - lo_b > 1) {
        const std::uint64_t mid = lo_b + (hi_b - lo_b) / 2;
        if (linear_scan(weights, total, double_of(mid)) == lo_bin) {
          lo_b = mid;
        } else {
          hi_b = mid;
        }
      }
      const double split = double_of(hi_b);
      // A second boundary inside this cell (scan takes a third value) means
      // the cells are too coarse: double m and retry.
      if (linear_scan(weights, total, split) != hi_bin) {
        ok = false;
        break;
      }
      cells_.push_back(Cell{split, lo_bin, hi_bin});
    }
    if (ok) {
      cdf_exact_ = true;
      return true;
    }
  }
  cells_.clear();
  return false;
}

void AliasSampler::build_vose(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const std::size_t n = n_;
  const auto nd = static_cast<double>(n);

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] / total * nd;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  cells_.assign(n, Cell{2.0, 0, 0});
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    // Cell s: [s/n, s/n + scaled[s]/n) stays s, the rest aliases to l.
    cells_[s] = Cell{(static_cast<double>(s) + scaled[s]) / nd, s, l};
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) cells_[i] = Cell{2.0, i, i};
  for (const std::uint32_t i : small) cells_[i] = Cell{2.0, i, i};  // rounding dust
  cdf_exact_ = false;
}

}  // namespace pathload
