#pragma once

#include <cmath>
#include <cstdint>

namespace pathload {

/// Counter-based pseudo-random source for the engine-v2 determinism
/// contract (docs/ENGINE.md).
///
/// Philox2x64-10: each 128-bit block (counter, stream) is encrypted under a
/// 64-bit key with ten multiply-xor rounds, yielding two 64-bit outputs.
/// Unlike the mt19937-64 behind util::Rng there is no evolving hidden
/// state — the n-th draw of stream s under key k is a pure function of
/// (k, s, n) — which buys three things the v2 engine needs:
///
///  * seekable, splittable streams: every (hop, source) pair gets its own
///    stream id, so draws are order-independent and adding a source never
///    perturbs another source's sequence (v1 had to thread fork() calls in
///    a frozen order to get this);
///  * tiny state (24 bytes vs mt19937_64's 2.5 kB), so per-source
///    generators are cheap to hold by value;
///  * ~3x cheaper draws than the mt19937_64 + std::pow inverse-CDF pair on
///    the cross-traffic path (see BENCH_engine.json).
///
/// The variate transforms use exp2/log2 instead of exp/log/std::pow: one
/// log2 feeds both the exponential and Pareto inverse CDFs, and exp2 is the
/// cheapest of the exponential family on every libm. The drawn sequence is
/// therefore NOT bit-compatible with util::Rng — that break is exactly what
/// the v2 contract versions.
class CounterRng {
 public:
  /// `key` seeds the whole scenario; `stream` selects an independent
  /// substream (per hop, per source). Distinct (key, stream) pairs give
  /// statistically independent sequences.
  explicit CounterRng(std::uint64_t key, std::uint64_t stream = 0)
      : key_{key}, stream_{stream} {}

  /// A sibling generator on substream `id` of the same key.
  CounterRng stream(std::uint64_t id) const { return CounterRng{key_, id}; }

  /// Jump to the n-th block of this stream (each block yields two draws).
  void seek(std::uint64_t block) {
    counter_ = block;
    buffered_ = false;
  }

  /// Next raw 64-bit word.
  std::uint64_t next() {
    if (buffered_) {
      buffered_ = false;
      return buffer_;
    }
    std::uint64_t x0 = counter_++;
    std::uint64_t x1 = stream_;
    std::uint64_t k = key_;
    for (int round = 0; round < 10; ++round) {
      const unsigned __int128 prod =
          static_cast<unsigned __int128>(kMultiplier) * x0;
      const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 64);
      const std::uint64_t lo = static_cast<std::uint64_t>(prod);
      x0 = hi ^ k ^ x1;
      x1 = lo;
      k += kWeyl;
    }
    buffer_ = x1;
    buffered_ = true;
    return x0;
  }

  /// Uniform in [0, 1). Same power-of-two scaling as util::Rng::uniform.
  double uniform() {
    const double u = static_cast<double>(next()) * 0x1p-64;
    return u < 1.0 ? u : std::nextafter(1.0, 0.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Multiply-shift range reduction; the modulo
  /// bias is < n / 2^64, irrelevant for the small n used here.
  std::uint64_t uniform_index(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Exponential with the given mean: -mean * ln(1-u), computed as
  /// log2(1-u) * (-mean * ln 2) so the same log2 kernel serves Pareto too.
  double exponential(double mean) {
    return std::log2(1.0 - uniform()) * (-kLn2 * mean);
  }

  /// Pareto with shape `alpha` and the given mean (alpha > 1), scale
  /// x_m = mean * (alpha - 1) / alpha: x_m * (1-u)^(-1/alpha) in exp2/log2
  /// form.
  double pareto(double alpha, double mean) {
    const double x_m = mean * (alpha - 1.0) / alpha;
    return pareto_from_uniform(uniform(), x_m, 1.0 / alpha);
  }

  /// The exp2/log2 inverse-CDF behind `pareto`, exposed so hot paths that
  /// hoist (x_m, 1/alpha) share one definition (mirrors
  /// Rng::pareto_from_uniform, which uses std::pow).
  static double pareto_from_uniform(double u01, double x_m, double inv_alpha) {
    return x_m * std::exp2(-inv_alpha * std::log2(1.0 - u01));
  }

 private:
  static constexpr std::uint64_t kMultiplier = 0xD2B74407B1CE6E93ULL;
  static constexpr std::uint64_t kWeyl = 0x9E3779B97F4A7C15ULL;
  static constexpr double kLn2 = 0.6931471805599453;

  std::uint64_t key_;
  std::uint64_t stream_;
  std::uint64_t counter_{0};
  std::uint64_t buffer_{0};
  bool buffered_{false};
};

}  // namespace pathload
