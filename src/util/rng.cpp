#include "util/rng.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pathload {

double Rng::pareto(double alpha, double mean) {
  if (alpha <= 1.0) {
    throw std::invalid_argument{"Pareto mean is infinite for alpha <= 1"};
  }
  const double x_m = mean * (alpha - 1.0) / alpha;
  // Inverse-CDF sampling: X = x_m / U^(1/alpha), U ~ Uniform(0,1].
  return pareto_from_uniform(uniform(), x_m, 1.0 / alpha);
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument{"pick_weighted: empty weights"};
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace pathload
