#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pathload {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::cv() const {
  return (n_ > 0 && mean_ != 0.0) ? stddev() / mean_ : 0.0;
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<PercentileRow> deciles_5_to_95(std::span<const double> xs) {
  std::vector<PercentileRow> rows;
  rows.reserve(10);
  for (int p = 5; p <= 95; p += 10) {
    rows.push_back({static_cast<double>(p), percentile(xs, p / 100.0)});
  }
  return rows;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n == 0) return fit;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

double duration_weighted_average(std::span<const WeightedSample> samples) {
  double weighted_sum = 0.0;
  double total = 0.0;
  for (const auto& s : samples) {
    weighted_sum += s.value * s.duration.secs();
    total += s.duration.secs();
  }
  return total > 0.0 ? weighted_sum / total : 0.0;
}

}  // namespace pathload
