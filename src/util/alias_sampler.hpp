#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace pathload {

/// O(1) weighted index sampler (Walker/Vose alias method): one uniform draw,
/// one multiply, one comparison per sample, zero allocation after
/// construction.
///
/// The table is built in one of two ways:
///
///  - *CDF-aligned* (preferred): the unit interval is cut into 2^k cells,
///    doubling k until every cell contains at most one boundary of the
///    cumulative weight distribution. Each cell then holds the exact u-space
///    split point of the linear scan `Rng::pick_weighted` performs
///    (recovered by bisection over the floating-point subtract chain), so
///    `pick(u)` maps every u to the *same index the linear scan would
///    return* -- replacing a scan with this sampler is bit-identical, not
///    just equal in distribution.
///  - Classic Vose construction, as a fallback for pathological weight
///    vectors (more than `kMaxCells` cells would be needed, e.g. two
///    boundaries closer than 2^-12). Distribution-correct, but individual
///    u values may map to different indices than a linear scan.
///
/// Both constructions produce the same runtime structure, so `sample` has a
/// single branch-free-ish hot path either way.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Build a sampler over `weights` (must be non-empty, non-negative, with
  /// a positive total).
  explicit AliasSampler(std::span<const double> weights);

  /// Draw an index, consuming exactly one uniform variate.
  std::size_t sample(Rng& rng) const { return pick(rng.uniform()); }

  /// Deterministic mapping from u in [0, 1) to an index (the testable core
  /// of `sample`).
  std::size_t pick(double u) const {
    if (cells_.empty()) throw std::logic_error{"AliasSampler: empty sampler"};
    std::size_t c = static_cast<std::size_t>(u * scale_);
    // A Vose table's cell count need not be a power of two, so u within an
    // ulp of 1 can round the product up to scale_; clamp rather than read
    // past the end. (Aligned tables scale by a power of two: exact, never
    // clamped.)
    if (c >= cells_.size()) c = cells_.size() - 1;
    const Cell& cell = cells_[c];
    return u < cell.split_u ? cell.low : cell.high;
  }

  /// Number of weights the sampler was built over.
  std::size_t size() const { return n_; }

  /// True if `pick` reproduces the linear-scan mapping exactly.
  bool cdf_exact() const { return cdf_exact_; }

 private:
  struct Cell {
    double split_u;     // u below this -> low, else high (2.0 = never split)
    std::uint32_t low;
    std::uint32_t high;
  };

  static constexpr std::size_t kMaxCells = 4096;

  bool build_cdf_aligned(std::span<const double> weights);
  void build_vose(std::span<const double> weights);

  std::vector<Cell> cells_;
  double scale_{0.0};  // == cells_.size()
  std::size_t n_{0};
  bool cdf_exact_{false};
};

}  // namespace pathload
