#pragma once

#include <cstdint>

#include "core/channel.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace pathload::net {

/// Connection-robustness knobs of the live sender. The defaults suit the
/// common race — the sender launched moments before the receiver — without
/// stalling a genuinely unreachable target for long.
struct LiveChannelConfig {
  /// Handshake attempts before giving up (connect + Hello round trip).
  int handshake_attempts{5};
  /// Exponential backoff between attempts: attempt n sleeps about
  /// base * 2^n, capped. Each delay is jittered to half-to-full of that
  /// value so simultaneously restarted senders do not reconnect in phase.
  Duration backoff_base{Duration::milliseconds(100)};
  Duration backoff_cap{Duration::seconds(2)};
  /// Seed of the jitter stream (deterministic backoff for tests).
  std::uint64_t jitter_seed{1};
  /// Deadline of each control-channel operation (connect, replies).
  Duration control_timeout{Duration::seconds(5)};
};

/// Backoff before retry `attempt` (0-based): base * 2^attempt capped at
/// backoff_cap, then jittered into [d/2, d] so a herd of restarted senders
/// spreads out. The doubling is an integer shift with the exponent clamped
/// (a pathological attempt count must saturate at the cap, not overflow).
/// Exposed for the unit test of the capped schedule.
Duration handshake_backoff(const LiveChannelConfig& cfg, int attempt, Rng& rng);

/// The pathload *sender* side over real sockets: the ProbeChannel backend
/// that makes `core::PathloadSession` a live measurement tool.
///
/// Wiring (Section IV): a TCP control connection coordinates the
/// measurement; each periodic stream is K UDP packets of L bytes paced at
/// period T with a hybrid sleep/spin timer; the receiver sends back
/// per-packet (sender timestamp, receiver timestamp) records.
///
/// Failure contract: a control connection that closes mid-session, an
/// oversized control frame, or a kAbort from the receiver all surface as
/// core::ChannelFault — the structured "this channel is dead" signal that
/// core::run_guarded converts into a `failed` EstimateReport. A missing
/// stream result within the collection window is NOT a fault: it reports
/// as total loss of that stream, exactly like the simulated channel.
class LiveProbeChannel final : public core::ProbeChannel {
 public:
  /// Connect to a LiveReceiver's control endpoint and perform the
  /// handshake (learn the probe port, estimate the control-channel RTT),
  /// retrying with capped exponential backoff per `cfg`.
  explicit LiveProbeChannel(const Endpoint& control,
                            LiveChannelConfig cfg = LiveChannelConfig{});
  ~LiveProbeChannel() override;

  core::StreamOutcome run_stream(const core::StreamSpec& spec) override;
  void idle(Duration d) override;
  TimePoint now() override { return monotonic_now(); }
  Duration rtt() const override { return rtt_; }

  LiveProbeChannel(const LiveProbeChannel&) = delete;
  LiveProbeChannel& operator=(const LiveProbeChannel&) = delete;

 private:
  /// Result of one successful connect + Hello handshake.
  struct Handshake {
    TcpStream control;
    std::uint16_t udp_port{0};
  };
  static Handshake connect_with_retry(const Endpoint& control,
                                      const LiveChannelConfig& cfg);

  LiveProbeChannel(const Endpoint& control, const LiveChannelConfig& cfg,
                   Handshake hs);

  Duration measure_rtt(int samples);

  LiveChannelConfig cfg_;
  TcpStream control_;
  UdpSocket probe_socket_;
  Duration rtt_{Duration::milliseconds(1)};
};

}  // namespace pathload::net
