#pragma once

#include <cstdint>

#include "core/channel.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace pathload::net {

/// The pathload *sender* side over real sockets: the ProbeChannel backend
/// that makes `core::PathloadSession` a live measurement tool.
///
/// Wiring (Section IV): a TCP control connection coordinates the
/// measurement; each periodic stream is K UDP packets of L bytes paced at
/// period T with a hybrid sleep/spin timer; the receiver sends back
/// per-packet (sender timestamp, receiver timestamp) records.
class LiveProbeChannel final : public core::ProbeChannel {
 public:
  /// Connect to a LiveReceiver's control endpoint and perform the
  /// handshake (learn the probe port, estimate the control-channel RTT).
  explicit LiveProbeChannel(const Endpoint& control);
  ~LiveProbeChannel() override;

  core::StreamOutcome run_stream(const core::StreamSpec& spec) override;
  void idle(Duration d) override;
  TimePoint now() override { return monotonic_now(); }
  Duration rtt() const override { return rtt_; }

  LiveProbeChannel(const LiveProbeChannel&) = delete;
  LiveProbeChannel& operator=(const LiveProbeChannel&) = delete;

 private:
  Duration measure_rtt(int samples);

  TcpStream control_;
  UdpSocket probe_socket_;
  Duration rtt_{Duration::milliseconds(1)};
};

}  // namespace pathload::net
