#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/stream.hpp"

namespace pathload::net {

/// Control-channel message types (TCP, framed).
///
/// The real pathload likewise runs its measurement protocol over a TCP
/// connection while the probe streams themselves are UDP (Section IV).
enum class MsgType : std::uint8_t {
  kHello = 1,        ///< sender -> receiver: session open
  kHelloReply = 2,   ///< receiver -> sender: carries the receiver's UDP port
  kStreamStart = 3,  ///< sender -> receiver: a stream is about to be sent
  kStreamResult = 4, ///< receiver -> sender: per-packet records of the stream
  kEcho = 5,         ///< RTT probe over the control channel
  kEchoReply = 6,
  kBye = 7,          ///< session close
  kAbort = 8,        ///< either side: session torn down now (payload: an
                     ///< optional UTF-8 reason for the peer's logs)
};

/// Little-endian append-only buffer writer.
class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(T v) {
    // resize + memcpy rather than insert(end, p, p + n): gcc 12's
    // -Wstringop-overflow misjudges the range-insert growth path once
    // put(i64) is inlined into a larger frame.
    const std::size_t old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Little-endian sequential reader; `ok()` turns false on underrun instead
/// of throwing, so malformed peer input degrades to a rejected message.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_{data} {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T v{};
    if (pos_ + sizeof(T) > data_.size()) {
      ok_ = false;
      return v;
    }
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_{0};
  bool ok_{true};
};

/// Header of one stream announcement.
struct StreamStartMsg {
  std::uint32_t stream_id{0};
  std::uint32_t packet_count{0};
  std::uint32_t packet_size{0};
  std::int64_t period_ns{0};

  std::vector<std::byte> encode() const;
  static std::optional<StreamStartMsg> decode(std::span<const std::byte> payload);

  core::StreamSpec to_spec() const;
  static StreamStartMsg from_spec(const core::StreamSpec& spec);
};

/// What the receiver saw of one stream.
struct StreamResultMsg {
  std::uint32_t stream_id{0};
  std::vector<core::ProbeRecord> records;

  std::vector<std::byte> encode() const;
  static std::optional<StreamResultMsg> decode(std::span<const std::byte> payload);
};

/// Build a full framed control message: [type u8][payload...].
std::vector<std::byte> make_message(MsgType type, std::span<const std::byte> payload = {});

/// Build a kAbort message carrying a human-readable reason.
std::vector<std::byte> make_abort(std::string_view reason);

/// The reason text of a received kAbort payload (may be empty).
std::string abort_reason(std::span<const std::byte> payload);

/// Split a received control message into type + payload view.
struct ParsedMessage {
  MsgType type;
  std::span<const std::byte> payload;
};
std::optional<ParsedMessage> parse_message(std::span<const std::byte> frame);

/// UDP probe packet header (the rest of the packet is padding up to L):
/// [magic u32][stream_id u32][seq u32][sent_ns i64].
inline constexpr std::uint32_t kProbeMagic = 0x534c6f50;  // "SLoP"
inline constexpr std::size_t kProbeHeaderSize = 4 + 4 + 4 + 8;

struct ProbeHeader {
  std::uint32_t stream_id{0};
  std::uint32_t seq{0};
  std::int64_t sent_ns{0};
};

/// Fill `packet` (already sized to L >= header) with the probe header.
void write_probe_header(std::span<std::byte> packet, const ProbeHeader& h);

/// Parse a probe packet; nullopt if it is not ours (magic mismatch / short).
std::optional<ProbeHeader> read_probe_header(std::span<const std::byte> packet);

}  // namespace pathload::net
