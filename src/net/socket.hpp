#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace pathload::net {

/// RAII owner of a POSIX file descriptor.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_{fd} {}
  ~FileDescriptor();

  FileDescriptor(FileDescriptor&& o) noexcept : fd_{o.fd_} { o.fd_ = -1; }
  FileDescriptor& operator=(FileDescriptor&& o) noexcept;
  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_{-1};
};

/// An IPv4 endpoint.
struct Endpoint {
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};
};

/// Minimal UDP socket wrapper (IPv4). Throws std::system_error on fatal
/// errors; timeouts surface as empty optionals.
class UdpSocket {
 public:
  /// Bind to host:port (port 0 = ephemeral).
  static UdpSocket bind(const Endpoint& local);

  /// Set the default destination for send().
  void connect(const Endpoint& remote);

  void send(std::span<const std::byte> payload);

  /// Receive one datagram, waiting at most `timeout`; nullopt on timeout.
  std::optional<std::vector<std::byte>> recv(Duration timeout);

  /// A received datagram together with its arrival timestamp. When the
  /// kernel provides SO_TIMESTAMPNS stamps, `stamp` is the in-kernel
  /// arrival time — immune to user-space scheduling delay, which matters
  /// because SLoPS reads microsecond-scale OWD differences. Falls back to
  /// the monotonic clock at recv() return otherwise.
  struct Datagram {
    std::vector<std::byte> payload;
    TimePoint stamp;
  };
  std::optional<Datagram> recv_with_timestamp(Duration timeout);

  std::uint16_t local_port() const;
  int fd() const { return fd_.get(); }

 private:
  explicit UdpSocket(FileDescriptor fd) : fd_{std::move(fd)} {}
  FileDescriptor fd_;
};

/// Why a framed receive ended. `kTimeout` and `kClosed` were previously
/// conflated (both surfaced as nullopt), which made a dead peer look like a
/// slow one — a receiver loop could spin on a closed connection forever.
enum class FrameStatus : std::uint8_t {
  kOk,        ///< a complete frame arrived
  kTimeout,   ///< the deadline passed with the frame incomplete
  kClosed,    ///< the peer shut the connection down (possibly mid-frame)
  kTooLarge,  ///< the length prefix exceeds the caller's cap (see below)
};

/// Result of TcpStream::recv_frame_ex; `payload` is filled only on kOk.
struct FrameResult {
  FrameStatus status{FrameStatus::kTimeout};
  std::vector<std::byte> payload;
};

/// Frame caps. Control messages (handshake, stream announcements, echoes)
/// are tens of bytes — 64 KiB is generous headroom. Stream-result frames
/// carry up to 1M per-packet records of 20 bytes, hence the larger cap.
/// A peer's length prefix is attacker-controlled input; it must never size
/// an allocation past the cap the caller chose for that message class.
inline constexpr std::uint32_t kMaxControlFrame = 64 * 1024;
inline constexpr std::uint32_t kMaxResultFrame = 32 * 1024 * 1024;

/// Minimal blocking TCP stream with length-prefixed message framing:
/// every message is [u32 little-endian length][payload].
class TcpStream {
 public:
  static TcpStream connect(const Endpoint& remote, Duration timeout);

  /// Send one framed message.
  void send_frame(std::span<const std::byte> payload);

  /// Receive one framed message, reporting how the attempt ended. A frame
  /// whose length prefix exceeds `max_len` yields kTooLarge *without
  /// reading or allocating the body* — the stream is then mid-frame and no
  /// longer parseable, so callers should abort the connection.
  FrameResult recv_frame_ex(Duration timeout,
                            std::uint32_t max_len = kMaxResultFrame);

  /// Convenience form: nullopt on timeout or orderly shutdown (use
  /// recv_frame_ex to tell the two apart); throws std::length_error on an
  /// oversized frame.
  std::optional<std::vector<std::byte>> recv_frame(
      Duration timeout, std::uint32_t max_len = kMaxResultFrame);

  int fd() const { return fd_.get(); }

  explicit TcpStream(FileDescriptor fd) : fd_{std::move(fd)} {}

 private:
  void send_all(std::span<const std::byte> data);
  FrameStatus recv_all(std::span<std::byte> out, Duration timeout);

  FileDescriptor fd_;
};

/// Listening TCP socket.
class TcpListener {
 public:
  static TcpListener bind(const Endpoint& local);

  /// Accept one connection; nullopt on timeout.
  std::optional<TcpStream> accept(Duration timeout);

  std::uint16_t local_port() const;

 private:
  explicit TcpListener(FileDescriptor fd) : fd_{std::move(fd)} {}
  FileDescriptor fd_;
};

/// CLOCK_MONOTONIC as a TimePoint (the live backend's clock).
TimePoint monotonic_now();

/// Sleep until the given monotonic time: coarse clock_nanosleep for the
/// bulk, then a short spin for the last stretch. This is how the live
/// sender paces probe packets to the stream period T (>= 100 us), where
/// plain sleep granularity would be far too coarse.
void sleep_until(TimePoint deadline, Duration spin_window = Duration::microseconds(60));

}  // namespace pathload::net
