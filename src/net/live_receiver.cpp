#include "net/live_receiver.hpp"

#include <vector>

namespace pathload::net {

namespace {

/// Best-effort abort: the peer may already be gone, which is fine — the
/// abort is a courtesy for its logs, not part of the teardown contract.
void try_abort(TcpStream& conn, std::string_view reason) {
  try {
    conn.send_frame(make_abort(reason));
  } catch (...) {
  }
}

}  // namespace

LiveReceiver::LiveReceiver(const std::string& host)
    : listener_{TcpListener::bind({host, 0})},
      udp_{UdpSocket::bind({host, 0})},
      udp_port_{udp_.local_port()} {}

std::uint16_t LiveReceiver::control_port() const { return listener_.local_port(); }

StreamResultMsg LiveReceiver::collect_stream(const StreamStartMsg& start) {
  StreamResultMsg result;
  result.stream_id = start.stream_id;
  result.records.reserve(start.packet_count);

  // Deadline: nominal stream duration plus slack for queueing and the
  // control-message round trip. Anything later counts as lost. Stale
  // datagrams from earlier streams are filtered by stream id (ids are
  // unique within a session), never silently drained — a drain would race
  // with a fast sender's first packets.
  const Duration nominal =
      Duration::nanoseconds(start.period_ns) * static_cast<double>(start.packet_count);
  const TimePoint deadline = monotonic_now() + nominal + Duration::milliseconds(500);

  // A duplicated (or replayed) datagram must not fill the stream's quota
  // with repeats of one sequence number: first arrival per seq wins, any
  // seq past the announced count is not ours.
  std::vector<bool> seen(start.packet_count, false);

  while (result.records.size() < start.packet_count) {
    const Duration remaining = deadline - monotonic_now();
    if (remaining <= Duration::zero()) break;
    auto datagram = udp_.recv_with_timestamp(remaining);
    if (!datagram.has_value()) break;
    const auto header = read_probe_header(datagram->payload);
    if (!header.has_value() || header->stream_id != start.stream_id) continue;
    if (header->seq >= start.packet_count || seen[header->seq]) continue;
    seen[header->seq] = true;
    core::ProbeRecord rec;
    rec.seq = header->seq;
    rec.sent = TimePoint::from_nanos(header->sent_ns);
    rec.received = datagram->stamp;
    result.records.push_back(rec);
  }
  return result;
}

int LiveReceiver::serve_one_session(Duration accept_timeout, Duration idle_timeout) {
  auto conn = listener_.accept(accept_timeout);
  if (!conn.has_value()) return 0;

  int streams_served = 0;
  TimePoint last_activity = monotonic_now();
  while (!stop_.load(std::memory_order_relaxed)) {
    const FrameResult frame =
        conn->recv_frame_ex(Duration::seconds(2), kMaxControlFrame);
    switch (frame.status) {
      case FrameStatus::kOk:
        break;
      case FrameStatus::kTimeout:
        if (monotonic_now() - last_activity > idle_timeout) {
          try_abort(*conn, "idle timeout");
          return streams_served;
        }
        continue;  // keep waiting (and keep honoring request_stop)
      case FrameStatus::kClosed:
        // The sender is gone — mid-frame or between frames. Done either way.
        return streams_served;
      case FrameStatus::kTooLarge:
        // The stream is unframed past an oversized prefix: abort, don't
        // guess at a resync point inside attacker-controlled bytes.
        try_abort(*conn, "oversized control frame");
        return streams_served;
    }
    last_activity = monotonic_now();
    const auto msg = parse_message(frame.payload);
    if (!msg.has_value()) continue;  // unknown/malformed message: skip it

    switch (msg->type) {
      case MsgType::kHello: {
        ByteWriter w;
        w.put(udp_port_);
        const auto payload = w.take();
        conn->send_frame(make_message(MsgType::kHelloReply, payload));
        break;
      }
      case MsgType::kEcho:
        conn->send_frame(make_message(MsgType::kEchoReply, msg->payload));
        break;
      case MsgType::kStreamStart: {
        const auto start = StreamStartMsg::decode(msg->payload);
        if (!start.has_value()) break;  // malformed announcement: skip it
        const auto result = collect_stream(*start);
        const auto payload = result.encode();
        conn->send_frame(make_message(MsgType::kStreamResult, payload));
        ++streams_served;
        break;
      }
      case MsgType::kBye:
      case MsgType::kAbort:
        return streams_served;
      default:
        break;
    }
  }
  return streams_served;
}

}  // namespace pathload::net
