#include "net/live_receiver.hpp"

namespace pathload::net {

LiveReceiver::LiveReceiver(const std::string& host)
    : listener_{TcpListener::bind({host, 0})},
      udp_{UdpSocket::bind({host, 0})},
      udp_port_{udp_.local_port()} {}

std::uint16_t LiveReceiver::control_port() const { return listener_.local_port(); }

StreamResultMsg LiveReceiver::collect_stream(const StreamStartMsg& start) {
  StreamResultMsg result;
  result.stream_id = start.stream_id;
  result.records.reserve(start.packet_count);

  // Deadline: nominal stream duration plus slack for queueing and the
  // control-message round trip. Anything later counts as lost. Stale
  // datagrams from earlier streams are filtered by stream id (ids are
  // unique within a session), never silently drained — a drain would race
  // with a fast sender's first packets.
  const Duration nominal =
      Duration::nanoseconds(start.period_ns) * static_cast<double>(start.packet_count);
  const TimePoint deadline = monotonic_now() + nominal + Duration::milliseconds(500);

  while (result.records.size() < start.packet_count) {
    const Duration remaining = deadline - monotonic_now();
    if (remaining <= Duration::zero()) break;
    auto datagram = udp_.recv_with_timestamp(remaining);
    if (!datagram.has_value()) break;
    const auto header = read_probe_header(datagram->payload);
    if (!header.has_value() || header->stream_id != start.stream_id) continue;
    core::ProbeRecord rec;
    rec.seq = header->seq;
    rec.sent = TimePoint::from_nanos(header->sent_ns);
    rec.received = datagram->stamp;
    result.records.push_back(rec);
  }
  return result;
}

int LiveReceiver::serve_one_session(Duration accept_timeout) {
  auto conn = listener_.accept(accept_timeout);
  if (!conn.has_value()) return 0;

  int streams_served = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    auto frame = conn->recv_frame(Duration::seconds(2));
    if (!frame.has_value()) {
      // Timeout or disconnect: loop (to honor request_stop) unless closed.
      continue;
    }
    const auto msg = parse_message(*frame);
    if (!msg.has_value()) continue;

    switch (msg->type) {
      case MsgType::kHello: {
        ByteWriter w;
        w.put(udp_port_);
        const auto payload = w.take();
        conn->send_frame(make_message(MsgType::kHelloReply, payload));
        break;
      }
      case MsgType::kEcho:
        conn->send_frame(make_message(MsgType::kEchoReply, msg->payload));
        break;
      case MsgType::kStreamStart: {
        const auto start = StreamStartMsg::decode(msg->payload);
        if (!start.has_value()) break;
        const auto result = collect_stream(*start);
        const auto payload = result.encode();
        conn->send_frame(make_message(MsgType::kStreamResult, payload));
        ++streams_served;
        break;
      }
      case MsgType::kBye:
        return streams_served;
      default:
        break;
    }
  }
  return streams_served;
}

}  // namespace pathload::net
