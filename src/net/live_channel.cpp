#include "net/live_channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pathload::net {

Duration handshake_backoff(const LiveChannelConfig& cfg, int attempt, Rng& rng) {
  // 1ULL << n is exact in double for n <= 62, and 2^62 * any sane base is
  // far past every cap, so clamping the exponent preserves the pre-clamp
  // schedule bit-for-bit below the cap while making huge attempt counts
  // (or an int overflowing 2^attempt in floating point) saturate safely.
  const int shift = std::clamp(attempt, 0, 62);
  const double d =
      std::min(cfg.backoff_cap.secs(),
               cfg.backoff_base.secs() * static_cast<double>(1ULL << shift));
  return Duration::seconds(d * 0.5 + d * 0.5 * rng.uniform());
}

namespace {

[[noreturn]] void throw_abort(std::span<const std::byte> payload) {
  std::string reason = abort_reason(payload);
  throw core::ChannelFault{reason.empty()
                               ? "receiver aborted the session"
                               : "receiver aborted the session: " + reason};
}

}  // namespace

LiveProbeChannel::Handshake LiveProbeChannel::connect_with_retry(
    const Endpoint& control, const LiveChannelConfig& cfg) {
  Rng jitter{cfg.jitter_seed};
  const int attempts = std::max(1, cfg.handshake_attempts);
  std::string last_error = "handshake never attempted";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      sleep_until(monotonic_now() + handshake_backoff(cfg, attempt - 1, jitter));
    }
    try {
      TcpStream stream = TcpStream::connect(control, cfg.control_timeout);
      stream.send_frame(make_message(MsgType::kHello));
      const FrameResult reply =
          stream.recv_frame_ex(cfg.control_timeout, kMaxControlFrame);
      if (reply.status != FrameStatus::kOk) {
        last_error = "pathload handshake got no reply";
        continue;
      }
      const auto msg = parse_message(reply.payload);
      if (!msg.has_value()) {
        last_error = "malformed handshake reply";
        continue;
      }
      if (msg->type == MsgType::kAbort) throw_abort(msg->payload);
      if (msg->type != MsgType::kHelloReply) {
        last_error = "unexpected handshake reply";
        continue;
      }
      ByteReader r{msg->payload};
      const auto udp_port = r.get<std::uint16_t>();
      if (!r.ok()) {
        last_error = "malformed handshake reply";
        continue;
      }
      return Handshake{std::move(stream), udp_port};
    } catch (const std::system_error& e) {
      // Typically ECONNREFUSED: the receiver is not up yet. Retry.
      last_error = e.what();
    }
  }
  throw std::runtime_error{"pathload handshake failed after " +
                           std::to_string(attempts) +
                           " attempts (last error: " + last_error + ")"};
}

LiveProbeChannel::LiveProbeChannel(const Endpoint& control, LiveChannelConfig cfg)
    : LiveProbeChannel{control, cfg, connect_with_retry(control, cfg)} {}

LiveProbeChannel::LiveProbeChannel(const Endpoint& control,
                                   const LiveChannelConfig& cfg, Handshake hs)
    : cfg_{cfg},
      control_{std::move(hs.control)},
      probe_socket_{UdpSocket::bind({control.host, 0})} {
  probe_socket_.connect({control.host, hs.udp_port});
  rtt_ = measure_rtt(5);
}

LiveProbeChannel::~LiveProbeChannel() {
  try {
    control_.send_frame(make_message(MsgType::kBye));
  } catch (...) {
    // Best-effort goodbye; the receiver also exits on disconnect.
  }
}

Duration LiveProbeChannel::measure_rtt(int samples) {
  std::vector<double> rtts;
  for (int i = 0; i < samples; ++i) {
    const TimePoint start = monotonic_now();
    control_.send_frame(make_message(MsgType::kEcho));
    const FrameResult reply =
        control_.recv_frame_ex(cfg_.control_timeout, kMaxControlFrame);
    if (reply.status != FrameStatus::kOk) break;
    const auto msg = parse_message(reply.payload);
    if (msg.has_value() && msg->type == MsgType::kAbort) throw_abort(msg->payload);
    if (!msg.has_value() || msg->type != MsgType::kEchoReply) break;
    rtts.push_back((monotonic_now() - start).secs());
  }
  if (rtts.empty()) return Duration::milliseconds(1);
  return Duration::seconds(median(rtts));
}

core::StreamOutcome LiveProbeChannel::run_stream(const core::StreamSpec& spec) {
  if (!spec.periodic() &&
      spec.gaps.size() + 1 != static_cast<std::size_t>(spec.packet_count)) {
    throw std::invalid_argument{
        "StreamSpec.gaps must carry packet_count - 1 entries"};
  }
  const auto start_msg = StreamStartMsg::from_spec(spec).encode();
  control_.send_frame(make_message(MsgType::kStreamStart, start_msg));

  // Pace K packets on the spec's schedule — the period T, or the explicit
  // gap list (chirps) — using absolute deadlines so that timer error does
  // not accumulate across the stream; the *actual* send time is what goes
  // into the packet, so the receiver's send-gap screening sees real pacing
  // quality, context switches included.
  std::vector<std::byte> packet(static_cast<std::size_t>(spec.packet_size));
  const TimePoint t0 = monotonic_now() + Duration::milliseconds(1);
  Duration offset = Duration::zero();
  for (int i = 0; i < spec.packet_count; ++i) {
    if (i > 0) {
      offset += spec.periodic() ? spec.period
                                : spec.gaps[static_cast<std::size_t>(i - 1)];
    }
    sleep_until(t0 + offset);
    ProbeHeader h;
    h.stream_id = spec.stream_id;
    h.seq = static_cast<std::uint32_t>(i);
    h.sent_ns = monotonic_now().nanos();
    write_probe_header(packet, h);
    probe_socket_.send(packet);
  }

  core::StreamOutcome outcome;
  outcome.sent_count = spec.packet_count;

  // The receiver reports after its collection deadline (stream duration
  // + 500 ms slack); wait a little longer than that.
  const Duration wait = spec.duration() + Duration::seconds(2);
  const FrameResult reply = control_.recv_frame_ex(wait, kMaxResultFrame);
  switch (reply.status) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kTimeout:
      return outcome;  // receiver silent: total loss of this stream
    case FrameStatus::kClosed:
      throw core::ChannelFault{"control connection closed mid-session"};
    case FrameStatus::kTooLarge:
      throw core::ChannelFault{"oversized control frame from receiver"};
  }
  const auto msg = parse_message(reply.payload);
  if (!msg.has_value()) return outcome;
  if (msg->type == MsgType::kAbort) throw_abort(msg->payload);
  if (msg->type != MsgType::kStreamResult) return outcome;
  auto result = StreamResultMsg::decode(msg->payload);
  if (!result.has_value() || result->stream_id != spec.stream_id) return outcome;

  // Records arrive in receive order; SLoPS analyzes them in seq order.
  std::sort(result->records.begin(), result->records.end(),
            [](const core::ProbeRecord& a, const core::ProbeRecord& b) {
              return a.seq < b.seq;
            });
  outcome.records = std::move(result->records);
  return outcome;
}

void LiveProbeChannel::idle(Duration d) { sleep_until(monotonic_now() + d); }

}  // namespace pathload::net
