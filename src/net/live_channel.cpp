#include "net/live_channel.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace pathload::net {

namespace {
constexpr Duration kControlTimeout = Duration::seconds(5);
}

LiveProbeChannel::LiveProbeChannel(const Endpoint& control)
    : control_{TcpStream::connect(control, kControlTimeout)},
      probe_socket_{UdpSocket::bind({control.host, 0})} {
  control_.send_frame(make_message(MsgType::kHello));
  const auto reply = control_.recv_frame(kControlTimeout);
  if (!reply.has_value()) throw std::runtime_error{"pathload handshake timed out"};
  const auto msg = parse_message(*reply);
  if (!msg.has_value() || msg->type != MsgType::kHelloReply) {
    throw std::runtime_error{"unexpected handshake reply"};
  }
  ByteReader r{msg->payload};
  const auto udp_port = r.get<std::uint16_t>();
  if (!r.ok()) throw std::runtime_error{"malformed handshake reply"};
  probe_socket_.connect({control.host, udp_port});
  rtt_ = measure_rtt(5);
}

LiveProbeChannel::~LiveProbeChannel() {
  try {
    control_.send_frame(make_message(MsgType::kBye));
  } catch (...) {
    // Best-effort goodbye; the receiver also exits on disconnect.
  }
}

Duration LiveProbeChannel::measure_rtt(int samples) {
  std::vector<double> rtts;
  for (int i = 0; i < samples; ++i) {
    const TimePoint start = monotonic_now();
    control_.send_frame(make_message(MsgType::kEcho));
    const auto reply = control_.recv_frame(kControlTimeout);
    if (!reply.has_value()) break;
    rtts.push_back((monotonic_now() - start).secs());
  }
  if (rtts.empty()) return Duration::milliseconds(1);
  return Duration::seconds(median(rtts));
}

core::StreamOutcome LiveProbeChannel::run_stream(const core::StreamSpec& spec) {
  if (!spec.periodic() &&
      spec.gaps.size() + 1 != static_cast<std::size_t>(spec.packet_count)) {
    throw std::invalid_argument{
        "StreamSpec.gaps must carry packet_count - 1 entries"};
  }
  const auto start_msg = StreamStartMsg::from_spec(spec).encode();
  control_.send_frame(make_message(MsgType::kStreamStart, start_msg));

  // Pace K packets on the spec's schedule — the period T, or the explicit
  // gap list (chirps) — using absolute deadlines so that timer error does
  // not accumulate across the stream; the *actual* send time is what goes
  // into the packet, so the receiver's send-gap screening sees real pacing
  // quality, context switches included.
  std::vector<std::byte> packet(static_cast<std::size_t>(spec.packet_size));
  const TimePoint t0 = monotonic_now() + Duration::milliseconds(1);
  Duration offset = Duration::zero();
  for (int i = 0; i < spec.packet_count; ++i) {
    if (i > 0) {
      offset += spec.periodic() ? spec.period
                                : spec.gaps[static_cast<std::size_t>(i - 1)];
    }
    sleep_until(t0 + offset);
    ProbeHeader h;
    h.stream_id = spec.stream_id;
    h.seq = static_cast<std::uint32_t>(i);
    h.sent_ns = monotonic_now().nanos();
    write_probe_header(packet, h);
    probe_socket_.send(packet);
  }

  core::StreamOutcome outcome;
  outcome.sent_count = spec.packet_count;

  // The receiver reports after its collection deadline (stream duration
  // + 500 ms slack); wait a little longer than that.
  const Duration wait = spec.duration() + Duration::seconds(2);
  const auto reply = control_.recv_frame(wait);
  if (!reply.has_value()) return outcome;  // receiver gone: total loss
  const auto msg = parse_message(*reply);
  if (!msg.has_value() || msg->type != MsgType::kStreamResult) return outcome;
  auto result = StreamResultMsg::decode(msg->payload);
  if (!result.has_value() || result->stream_id != spec.stream_id) return outcome;

  // Records arrive in receive order; SLoPS analyzes them in seq order.
  std::sort(result->records.begin(), result->records.end(),
            [](const core::ProbeRecord& a, const core::ProbeRecord& b) {
              return a.seq < b.seq;
            });
  outcome.records = std::move(result->records);
  return outcome;
}

void LiveProbeChannel::idle(Duration d) { sleep_until(monotonic_now() + d); }

}  // namespace pathload::net
