#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <system_error>

namespace pathload::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error{errno, std::generic_category(), what};
}

sockaddr_in make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument{"bad IPv4 address: " + ep.host};
  }
  return addr;
}

/// Wait for readability; false on timeout. A benign signal (profiler tick,
/// SIGCHLD from a test harness) interrupts poll with EINTR — that must not
/// tear the connection down, so the poll retries with the remaining budget.
bool wait_readable(int fd, Duration timeout) {
  const TimePoint deadline = monotonic_now() + timeout;
  for (;;) {
    const Duration remaining = deadline - monotonic_now();
    const auto ms = static_cast<int>(
        std::max<std::int64_t>(0, remaining.nanos() / 1'000'000));
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return rc > 0;
  }
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

}  // namespace

FileDescriptor::~FileDescriptor() { reset(); }

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void FileDescriptor::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UdpSocket UdpSocket::bind(const Endpoint& local) {
  FileDescriptor fd{::socket(AF_INET, SOCK_DGRAM, 0)};
  if (!fd.valid()) throw_errno("socket(UDP)");
  const sockaddr_in addr = make_addr(local);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind(UDP)");
  }
  // Best-effort kernel receive timestamps; recv_with_timestamp falls back
  // to user-space stamps when unavailable.
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_TIMESTAMPNS, &one, sizeof one);
  return UdpSocket{std::move(fd)};
}

void UdpSocket::connect(const Endpoint& remote) {
  const sockaddr_in addr = make_addr(remote);
  if (::connect(fd_.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("connect(UDP)");
  }
}

void UdpSocket::send(std::span<const std::byte> payload) {
  const ssize_t n = ::send(fd_.get(), payload.data(), payload.size(), 0);
  if (n < 0) throw_errno("send(UDP)");
}

std::optional<std::vector<std::byte>> UdpSocket::recv(Duration timeout) {
  auto d = recv_with_timestamp(timeout);
  if (!d.has_value()) return std::nullopt;
  return std::move(d->payload);
}

std::optional<UdpSocket::Datagram> UdpSocket::recv_with_timestamp(Duration timeout) {
  if (!wait_readable(fd_.get(), timeout)) return std::nullopt;

  std::vector<std::byte> buf(65536);
  iovec iov{buf.data(), buf.size()};
  alignas(cmsghdr) char control[256];
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof control;

  const ssize_t n = ::recvmsg(fd_.get(), &msg, 0);
  if (n < 0) throw_errno("recvmsg(UDP)");
  buf.resize(static_cast<std::size_t>(n));

  TimePoint stamp = monotonic_now();
  for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr; c = CMSG_NXTHDR(&msg, c)) {
    if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SCM_TIMESTAMPNS) {
      timespec ts{};
      std::memcpy(&ts, CMSG_DATA(c), sizeof ts);
      stamp = TimePoint::from_nanos(static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 +
                                    ts.tv_nsec);
      break;
    }
  }
  return Datagram{std::move(buf), stamp};
}

std::uint16_t UdpSocket::local_port() const { return bound_port(fd_.get()); }

TcpStream TcpStream::connect(const Endpoint& remote, Duration timeout) {
  FileDescriptor fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(TCP)");
  // Control messages are small and latency-sensitive.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  const sockaddr_in addr = make_addr(remote);
  // Blocking connect is fine on loopback; enforce an overall deadline via
  // SO_SNDTIMEO.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.secs());
  tv.tv_usec = static_cast<suseconds_t>((timeout.nanos() / 1000) % 1'000'000);
  ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("connect(TCP)");
  }
  return TcpStream{std::move(fd)};
}

void TcpStream::send_all(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent, 0);
    if (n <= 0) throw_errno("send(TCP)");
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::send_frame(std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::byte header[4];
  std::memcpy(header, &len, 4);
  send_all({header, 4});
  send_all(payload);
}

FrameStatus TcpStream::recv_all(std::span<std::byte> out, Duration timeout) {
  const TimePoint deadline = monotonic_now() + timeout;
  std::size_t got = 0;
  while (got < out.size()) {
    const Duration remaining = deadline - monotonic_now();
    if (remaining <= Duration::zero() || !wait_readable(fd_.get(), remaining)) {
      return FrameStatus::kTimeout;
    }
    const ssize_t n = ::recv(fd_.get(), out.data() + got, out.size() - got, 0);
    if (n == 0) return FrameStatus::kClosed;  // orderly shutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv(TCP)");
    }
    got += static_cast<std::size_t>(n);
  }
  return FrameStatus::kOk;
}

FrameResult TcpStream::recv_frame_ex(Duration timeout, std::uint32_t max_len) {
  FrameResult result;
  std::byte header[4];
  result.status = recv_all({header, 4}, timeout);
  if (result.status != FrameStatus::kOk) return result;
  std::uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if (len > max_len) {
    // The length prefix is peer-controlled: refuse before allocating, and
    // leave the body unread — the stream is unframed from here on.
    result.status = FrameStatus::kTooLarge;
    return result;
  }
  result.payload.resize(len);
  if (len > 0) {
    result.status = recv_all(result.payload, timeout);
    if (result.status != FrameStatus::kOk) result.payload.clear();
  }
  return result;
}

std::optional<std::vector<std::byte>> TcpStream::recv_frame(Duration timeout,
                                                            std::uint32_t max_len) {
  FrameResult result = recv_frame_ex(timeout, max_len);
  if (result.status == FrameStatus::kTooLarge) {
    throw std::length_error{"frame length prefix exceeds the " +
                            std::to_string(max_len) + "-byte cap"};
  }
  if (result.status != FrameStatus::kOk) return std::nullopt;
  return std::move(result.payload);
}

TcpListener TcpListener::bind(const Endpoint& local) {
  FileDescriptor fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(TCP listener)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = make_addr(local);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind(TCP)");
  }
  if (::listen(fd.get(), 4) != 0) throw_errno("listen");
  return TcpListener{std::move(fd)};
}

std::optional<TcpStream> TcpListener::accept(Duration timeout) {
  if (!wait_readable(fd_.get(), timeout)) return std::nullopt;
  FileDescriptor conn{::accept(fd_.get(), nullptr, nullptr)};
  if (!conn.valid()) throw_errno("accept");
  const int one = 1;
  ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream{std::move(conn)};
}

std::uint16_t TcpListener::local_port() const { return bound_port(fd_.get()); }

TimePoint monotonic_now() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return TimePoint::from_nanos(static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 +
                               ts.tv_nsec);
}

void sleep_until(TimePoint deadline, Duration spin_window) {
  // Coarse phase: kernel sleep until shortly before the deadline.
  const TimePoint coarse_end = deadline - spin_window;
  if (monotonic_now() < coarse_end) {
    timespec ts{};
    ts.tv_sec = static_cast<time_t>(coarse_end.nanos() / 1'000'000'000);
    ts.tv_nsec = static_cast<long>(coarse_end.nanos() % 1'000'000'000);
    ::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr);
  }
  // Fine phase: spin out the remainder for sub-scheduler-tick precision.
  while (monotonic_now() < deadline) {
  }
}

}  // namespace pathload::net
