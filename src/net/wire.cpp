#include "net/wire.hpp"

#include <algorithm>

namespace pathload::net {

std::vector<std::byte> StreamStartMsg::encode() const {
  ByteWriter w;
  w.put(stream_id);
  w.put(packet_count);
  w.put(packet_size);
  w.put(period_ns);
  return w.take();
}

std::optional<StreamStartMsg> StreamStartMsg::decode(std::span<const std::byte> payload) {
  ByteReader r{payload};
  StreamStartMsg m;
  m.stream_id = r.get<std::uint32_t>();
  m.packet_count = r.get<std::uint32_t>();
  m.packet_size = r.get<std::uint32_t>();
  m.period_ns = r.get<std::int64_t>();
  // The count bounds the receiver's record reservation, so it is subject
  // to the same 1M cap as StreamResultMsg — a announced count beyond it is
  // a malformed (or hostile) announcement, not a plausible stream.
  if (!r.ok() || m.packet_count == 0 || m.packet_count > 1'000'000 ||
      m.packet_size < kProbeHeaderSize || m.period_ns <= 0) {
    return std::nullopt;
  }
  return m;
}

core::StreamSpec StreamStartMsg::to_spec() const {
  core::StreamSpec spec;
  spec.stream_id = stream_id;
  spec.packet_count = static_cast<int>(packet_count);
  spec.packet_size = static_cast<int>(packet_size);
  spec.period = Duration::nanoseconds(period_ns);
  return spec;
}

StreamStartMsg StreamStartMsg::from_spec(const core::StreamSpec& spec) {
  StreamStartMsg m;
  m.stream_id = spec.stream_id;
  m.packet_count = static_cast<std::uint32_t>(spec.packet_count);
  m.packet_size = static_cast<std::uint32_t>(spec.packet_size);
  // The receiver only uses the period for its collection deadline
  // (period * count). A gapped stream (chirp) has no single period; send
  // the mean gap so the derived deadline still covers the send window.
  m.period_ns = spec.periodic()
                    ? spec.period.nanos()
                    : std::max<std::int64_t>(
                          1, spec.duration().nanos() /
                                 std::max(spec.packet_count - 1, 1));
  return m;
}

std::vector<std::byte> StreamResultMsg::encode() const {
  ByteWriter w;
  w.put(stream_id);
  w.put(static_cast<std::uint32_t>(records.size()));
  for (const auto& rec : records) {
    w.put(rec.seq);
    w.put(rec.sent.nanos());
    w.put(rec.received.nanos());
  }
  return w.take();
}

std::optional<StreamResultMsg> StreamResultMsg::decode(
    std::span<const std::byte> payload) {
  ByteReader r{payload};
  StreamResultMsg m;
  m.stream_id = r.get<std::uint32_t>();
  const auto count = r.get<std::uint32_t>();
  if (!r.ok() || count > 1'000'000) return std::nullopt;
  m.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    core::ProbeRecord rec;
    rec.seq = r.get<std::uint32_t>();
    rec.sent = TimePoint::from_nanos(r.get<std::int64_t>());
    rec.received = TimePoint::from_nanos(r.get<std::int64_t>());
    m.records.push_back(rec);
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<std::byte> make_message(MsgType type, std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(1 + payload.size());
  out.push_back(static_cast<std::byte>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::byte> make_abort(std::string_view reason) {
  return make_message(MsgType::kAbort,
                      std::as_bytes(std::span{reason.data(), reason.size()}));
}

std::string abort_reason(std::span<const std::byte> payload) {
  return std::string{reinterpret_cast<const char*>(payload.data()),
                     payload.size()};
}

std::optional<ParsedMessage> parse_message(std::span<const std::byte> frame) {
  if (frame.empty()) return std::nullopt;
  const auto type = static_cast<std::uint8_t>(frame[0]);
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kAbort)) {
    return std::nullopt;
  }
  return ParsedMessage{static_cast<MsgType>(type), frame.subspan(1)};
}

void write_probe_header(std::span<std::byte> packet, const ProbeHeader& h) {
  ByteWriter w;
  w.put(kProbeMagic);
  w.put(h.stream_id);
  w.put(h.seq);
  w.put(h.sent_ns);
  const auto bytes = w.take();
  std::memcpy(packet.data(), bytes.data(), std::min(bytes.size(), packet.size()));
}

std::optional<ProbeHeader> read_probe_header(std::span<const std::byte> packet) {
  if (packet.size() < kProbeHeaderSize) return std::nullopt;
  ByteReader r{packet};
  if (r.get<std::uint32_t>() != kProbeMagic) return std::nullopt;
  ProbeHeader h;
  h.stream_id = r.get<std::uint32_t>();
  h.seq = r.get<std::uint32_t>();
  h.sent_ns = r.get<std::int64_t>();
  return h;
}

}  // namespace pathload::net
