#pragma once

#include <atomic>
#include <cstdint>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace pathload::net {

/// The pathload *receiver* process (Section IV's RCV): accepts one sender
/// session over TCP, then serves stream announcements — for each announced
/// stream it timestamps the arriving UDP probe packets with the local
/// monotonic clock and ships the records back over the control channel.
///
/// The receiver never needs a clock synchronized with the sender: records
/// pair sender timestamps (embedded in each probe packet) with local
/// receive timestamps, and the SLoPS analysis uses only OWD *differences*.
///
/// Robustness contract: malformed control frames and unparseable messages
/// are skipped, not fatal; a sender that disconnects mid-stream ends the
/// session cleanly; a sender idle past `idle_timeout` (or one sending an
/// oversized frame) gets a kAbort with a reason before the session closes.
class LiveReceiver {
 public:
  /// Bind the control listener and probe socket on `host` (ephemeral ports).
  explicit LiveReceiver(const std::string& host = "127.0.0.1");

  std::uint16_t control_port() const;
  std::uint16_t probe_port() const { return udp_port_; }

  /// Serve one sender session: blocks until the sender says kBye/kAbort,
  /// the control connection drops, the sender goes idle past
  /// `idle_timeout`, or no sender connects within `accept_timeout`.
  /// Returns the number of streams served.
  int serve_one_session(Duration accept_timeout,
                        Duration idle_timeout = Duration::seconds(30));

  /// Ask a concurrently running serve_one_session() to wind down at the
  /// next control-channel timeout.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  StreamResultMsg collect_stream(const StreamStartMsg& start);

  TcpListener listener_;
  UdpSocket udp_;
  std::uint16_t udp_port_;
  std::atomic<bool> stop_{false};
};

}  // namespace pathload::net
